"""Unit tests for CS recovery (FISTA, OMP, debias, CsDecoder)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression import (
    CsDecoder,
    CsEncoder,
    debias,
    fista,
    omp,
    reconstruction_snr_db,
    soft_threshold,
)


class TestSoftThreshold:
    @settings(max_examples=40, deadline=None)
    @given(x=hnp.arrays(np.float64, st.integers(1, 50),
                        elements=st.floats(-1e3, 1e3, allow_nan=False)),
           t=st.floats(0.0, 100.0))
    def test_shrinks_towards_zero(self, x, t):
        out = soft_threshold(x, t)
        assert np.all(np.abs(out) <= np.abs(x) + 1e-12)
        assert np.all(np.sign(out) * np.sign(x) >= 0)

    def test_exact_values(self):
        x = np.array([3.0, -3.0, 0.5, -0.5])
        out = soft_threshold(x, 1.0)
        assert np.allclose(out, [2.0, -2.0, 0.0, 0.0])


def _sparse_problem(rng, m=60, n=120, k=6, noise=0.0):
    A = rng.standard_normal((m, n)) / np.sqrt(m)
    truth = np.zeros(n)
    support = rng.choice(n, size=k, replace=False)
    truth[support] = rng.uniform(1.0, 3.0, k) * rng.choice([-1, 1], k)
    y = A @ truth + noise * rng.standard_normal(m)
    return A, y, truth


class TestFista:
    def test_recovers_sparse_vector(self, rng):
        A, y, truth = _sparse_problem(rng)
        lam = 0.02 * np.max(np.abs(A.T @ y))
        estimate = debias(A, y, fista(A, y, lam, n_iter=800))
        assert np.max(np.abs(estimate - truth)) < 0.05

    def test_zero_operator(self):
        estimate = fista(np.zeros((4, 8)), np.ones(4), 0.1)
        assert np.allclose(estimate, 0.0)

    def test_large_lambda_gives_zero(self, rng):
        A, y, _ = _sparse_problem(rng)
        lam = 10 * np.max(np.abs(A.T @ y))
        assert np.allclose(fista(A, y, lam), 0.0)

    def test_objective_decreases(self, rng):
        A, y, _ = _sparse_problem(rng, noise=0.05)
        lam = 0.01 * np.max(np.abs(A.T @ y))

        def objective(a):
            return 0.5 * np.sum((y - A @ a) ** 2) + lam * np.sum(np.abs(a))

        short = fista(A, y, lam, n_iter=5, tol=0.0)
        long = fista(A, y, lam, n_iter=200, tol=0.0)
        assert objective(long) <= objective(short) + 1e-9


class TestOmp:
    def test_exact_recovery(self, rng):
        A, y, truth = _sparse_problem(rng, k=5)
        estimate = omp(A, y, sparsity=5)
        assert np.allclose(estimate, truth, atol=1e-8)

    def test_sparsity_budget_respected(self, rng):
        A, y, _ = _sparse_problem(rng, noise=0.1)
        estimate = omp(A, y, sparsity=7)
        assert np.count_nonzero(estimate) <= 7

    def test_invalid_sparsity(self, rng):
        A, y, _ = _sparse_problem(rng)
        with pytest.raises(ValueError):
            omp(A, y, sparsity=0)
        with pytest.raises(ValueError):
            omp(A, y, sparsity=A.shape[0] + 1)


class TestDebias:
    def test_removes_shrinkage_bias(self, rng):
        A, y, truth = _sparse_problem(rng)
        lam = 0.05 * np.max(np.abs(A.T @ y))
        biased = fista(A, y, lam, n_iter=400)
        refined = debias(A, y, biased)
        assert np.linalg.norm(refined - truth) < np.linalg.norm(
            biased - truth)

    def test_zero_estimate_passthrough(self, rng):
        A, y, _ = _sparse_problem(rng)
        zero = np.zeros(A.shape[1])
        assert np.array_equal(debias(A, y, zero), zero)

    def test_oversized_support_passthrough(self, rng):
        A, y, _ = _sparse_problem(rng, m=20, n=40)
        dense = rng.standard_normal(40)
        assert np.array_equal(debias(A, y, dense, rel_support=0.0), dense)


class TestCsDecoder:
    def test_high_snr_at_moderate_cr(self, clean_record):
        x = clean_record.signals[1][1000:1256]
        encoder = CsEncoder(n=256, cr_percent=40.0, seed=3)
        decoder = CsDecoder(encoder.sensing)
        result = decoder.recover(encoder.encode(x))
        assert reconstruction_snr_db(x, result.window) > 22.0

    def test_quality_degrades_with_cr(self, clean_record):
        x = clean_record.signals[1][1000:1256]
        snrs = []
        for cr in (30.0, 60.0, 85.0):
            encoder = CsEncoder(n=256, cr_percent=cr, seed=3)
            decoder = CsDecoder(encoder.sensing)
            result = decoder.recover(encoder.encode(x))
            snrs.append(reconstruction_snr_db(x, result.window))
        assert snrs[0] > snrs[1] > snrs[2]

    def test_omp_method(self, clean_record):
        x = clean_record.signals[1][1000:1256]
        encoder = CsEncoder(n=256, cr_percent=40.0, seed=3)
        decoder = CsDecoder(encoder.sensing, method="omp")
        result = decoder.recover(encoder.encode(x))
        assert reconstruction_snr_db(x, result.window) > 22.0

    def test_invalid_method(self):
        encoder = CsEncoder(n=64)
        with pytest.raises(ValueError, match="method"):
            CsDecoder(encoder.sensing, method="lasso")

    def test_support_size_reported(self, clean_record):
        x = clean_record.signals[1][1000:1256]
        encoder = CsEncoder(n=256, cr_percent=50.0, seed=3)
        result = CsDecoder(encoder.sensing).recover(encoder.encode(x))
        assert 0 < result.support_size <= 256

    def test_accepts_raw_measurements(self, clean_record):
        x = clean_record.signals[1][1000:1256]
        encoder = CsEncoder(n=256, cr_percent=40.0, seed=3)
        decoder = CsDecoder(encoder.sensing)
        y = encoder.sensing.matrix @ x
        result = decoder.recover(y)
        assert reconstruction_snr_db(x, result.window) > 22.0
