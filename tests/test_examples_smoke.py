"""Smoke tests: every script in examples/ must run and say its piece.

Each example is executed as a subprocess with tiny parameters (so the
whole file stays fast) and checked for exit code 0 plus the stdout
markers that prove it got past its interesting stages.  This is the
guard against examples silently rotting while the library underneath
them moves.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

#: script name -> (tiny-run argv, required stdout markers).
EXAMPLES = {
    "quickstart.py": (
        ["--duration", "20"],
        ["delineated beats", "beat detection", "mean heart rate"],
    ),
    "arrhythmia_monitor.py": (
        ["--duration", "90", "--train-records", "2",
         "--train-duration", "90"],
        ["AF alarms raised", "average node power", "battery estimate"],
    ),
    "compression_tradeoff.py": (
        ["--windows", "2", "--crs", "50,65,80"],
        ["operating point", "vs raw streaming"],
    ),
    "sleep_monitor.py": (
        ["--segment-s", "90"],
        ["transmitted bandwidth", "bps raw"],
    ),
    "multicore_mapping.py": (
        [],
        ["MC saves", "paper: up to 40 %"],
    ),
    "fleet_gateway.py": (
        ["--patients", "3", "--duration", "60", "--train-records", "2"],
        ["fleet of 3 patients", "triage:", "throughput:"],
    ),
    "fleet_event_kernel.py": (
        ["--patients", "4", "--duration", "60"],
        ["summaries byte-identical: True", "kernel-events",
         "event ratio"],
    ),
    "fleet_observability.py": (
        ["--patients", "3", "--duration", "60", "--shards", "2"],
        ["metrics:", "canonical snapshot matches",
         "flight dump written:"],
    ),
    "scenario_campaign.py": (
        ["--patients", "3", "--sentinels", "1", "--duration", "60"],
        ["campaign grid:", "clean", "loss-10pct",
         "reproduce this exact report"],
    ),
    "bench_report.py": (
        ["--cases", "fig1-abstraction-ladder,t2-delineation-resources"],
        ["running 2 bench case(s)", "verdict:"],
    ),
    "energy_governor.py": (
        ["--duration", "120", "--lifetime-patients", "2"],
        ["mode power table", "mode timeline:", "mode switches:",
         "best admissible static"],
    ),
    "fleet_sharded.py": (
        ["--patients", "4", "--shards", "2", "--duration", "60"],
        ["striped over 2 shards", "speedup:",
         "merged summaries byte-identical: True"],
    ),
    "fleet_serve.py": (
        ["--patients", "3", "--duration", "60"],
        ["loopback TCP", "connections:",
         "served summary byte-identical: True"],
    ),
    "fleet_journal_replay.py": (
        ["--patients", "3", "--duration", "60"],
        ["journal:", "recovered:", "replay byte-identical: True"],
    ),
}


def run_example(script: str, argv: list[str]):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *argv],
        capture_output=True, text=True, timeout=300, env=env,
        cwd=REPO_ROOT)


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLES), (
        "examples/ and the smoke-test table drifted apart; add the new "
        f"script(s) here: {sorted(scripts ^ set(EXAMPLES))}")


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs_clean(script):
    argv, markers = EXAMPLES[script]
    result = run_example(script, argv)
    assert result.returncode == 0, (
        f"{script} exited {result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}")
    for marker in markers:
        assert marker in result.stdout, (
            f"{script} stdout lost its {marker!r} marker\n"
            f"stdout:\n{result.stdout}")
    assert "Traceback" not in result.stderr
