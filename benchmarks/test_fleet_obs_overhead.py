"""Observability overhead — fleet hot path with vs without repro.obs.

Not a paper figure: this benchmarks the `repro.obs` layer's out-of-band
contract.  The same cohort runs through the `FleetScheduler` plain and
with an `Observability` bundle attached (gateway counters, trace
events, governor hooks all live); the bundle must change **nothing** —
the `FleetSummary` bytes are compared — and the wall-time overhead of
keeping it attached must stay under 5 %.  The canonical fleet-scope
snapshot must also be byte-identical across repeated observed runs
(virtual-time trace determinism).
"""

from __future__ import annotations

from conftest import print_table
from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    NodeProxyConfig,
    SchedulerConfig,
    make_cohort,
)
from repro.obs import Observability

N_PATIENTS = 8
DURATION_S = 60.0
FS = 250.0
#: Allowed slowdown with the bundle attached (matches the bench case).
MAX_OVERHEAD = 0.05


def run_fleet(obs=None):
    cohort = make_cohort(CohortConfig(n_patients=N_PATIENTS, seed=7))
    scheduler = FleetScheduler(
        cohort,
        SchedulerConfig(duration_s=DURATION_S, fs=FS),
        node_config=NodeProxyConfig(stream_telemetry=False),
        obs=obs,
    )
    return scheduler.run()


def test_fleet_obs_overhead(benchmark):
    plain = run_fleet()  # warm + byte reference

    obs = Observability()
    observed = benchmark.pedantic(run_fleet, args=(obs,),
                                  rounds=1, iterations=1)

    # Out-of-band: the summary must be byte-identical either way.
    assert observed.summary.to_json() == plain.summary.to_json()

    # Determinism: a second observed run reproduces the canonical
    # fleet-scope snapshot byte-for-byte.
    obs2 = Observability()
    run_fleet(obs2)
    assert obs2.canonical_json() == obs.canonical_json()

    snapshot = obs.metrics.snapshot()
    names = {series["name"] for series in snapshot["series"]}
    print_table(
        "Observability overhead "
        f"({N_PATIENTS} patients x {DURATION_S:.0f} s)",
        ["metric", "value"],
        [
            ("metric series", len(snapshot["series"])),
            ("metric families", len(names)),
            ("trace events", len(obs.trace.events)),
            ("packets sent", observed.packets_sent),
        ],
    )

    assert "gateway_packets_ingested_total" in names
    assert "scheduler_uplink_packets_total" in names
    assert len(obs.trace.events) > 0
