"""Instruction set of the WBSN cores (paper §IV-B, Fig. 3).

A compact 16-register RISC load/store ISA sized for bio-signal kernels.
Branchless ``MIN``/``MAX``/``ABS`` keep the morphological kernels fully
SIMD across cores (identical control flow -> perfect instruction
broadcast), while conditional branches exist for the genuinely
data-dependent sections, after which the paper's barrier mechanism
(``BAR``) re-synchronizes the cores.  ``CID`` exposes the core index, the
hook the reduced instruction-set extension of [18] provides for
synchronization bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

N_REGISTERS = 16


class Op(IntEnum):
    """Opcodes, grouped by energy class."""

    NOP = 0
    LDI = 1     # rd <- imm
    MOV = 2     # rd <- rs1
    ADD = 3     # rd <- rs1 + rs2
    SUB = 4     # rd <- rs1 - rs2
    ADDI = 5    # rd <- rs1 + imm
    MUL = 6     # rd <- rs1 * rs2
    MIN = 7     # rd <- min(rs1, rs2)
    MAX = 8     # rd <- max(rs1, rs2)
    ABS = 9     # rd <- |rs1|
    SHL = 10    # rd <- rs1 << imm
    SHR = 11    # rd <- rs1 >> imm (arithmetic)
    LD = 12     # rd <- dmem[rs1 + imm]
    ST = 13     # dmem[rs1 + imm] <- rs2
    BEQ = 14    # if rs1 == rs2: pc <- imm
    BNE = 15    # if rs1 != rs2: pc <- imm
    BLT = 16    # if rs1 <  rs2: pc <- imm
    BGE = 17    # if rs1 >= rs2: pc <- imm
    JMP = 18    # pc <- imm
    BAR = 19    # barrier: wait for all cores
    CID = 20    # rd <- core id
    HALT = 21
    # ISA extension of the CS accelerator (ref [19], TamaRISC-CS class):
    # fused index-load + sample-load + accumulate with pointer
    # post-increment, one cycle, two D-mem accesses.
    CSA = 22    # rd <- rd + dmem[dmem[rs1]]; rs1 <- rs1 + 1


#: Ops that access data memory (charged a D-mem access).
MEMORY_OPS = frozenset({Op.LD, Op.ST, Op.CSA})
#: Ops that may redirect control flow (branch-divergence candidates).
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.JMP})
#: The multiplier ops (higher-energy execute class).
MUL_OPS = frozenset({Op.MUL})


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Attributes:
        op: Opcode.
        rd: Destination register (unused fields stay 0).
        rs1: First source register.
        rs2: Second source register.
        imm: Immediate / branch target / memory offset.
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for name in ("rd", "rs1", "rs2"):
            value = getattr(self, name)
            if not 0 <= value < N_REGISTERS:
                raise ValueError(f"{name}={value} outside register file")

    def __str__(self) -> str:
        return (f"{self.op.name} rd=r{self.rd} rs1=r{self.rs1} "
                f"rs2=r{self.rs2} imm={self.imm}")
