"""DSP primitives: sliding windows, wavelet banks, fixed-point arithmetic."""

from .fixedpoint import (
    Q15,
    QFormat,
    SAMPLE_Q,
    fixed_point_fir,
    quantization_snr_db,
)
from .wavelets import (
    SPLINE_HIGHPASS,
    SPLINE_LOWPASS,
    atrous_swt,
    atrous_swt_integer,
    daubechies_filters,
    max_dwt_levels,
    orthogonal_dwt_matrix,
)
from .windows import (
    StreamingExtremum,
    closing,
    dilation,
    erosion,
    moving_average,
    moving_sum,
    opening,
    sliding_max,
    sliding_min,
)

__all__ = [
    "Q15",
    "QFormat",
    "SAMPLE_Q",
    "SPLINE_HIGHPASS",
    "SPLINE_LOWPASS",
    "StreamingExtremum",
    "atrous_swt",
    "atrous_swt_integer",
    "closing",
    "daubechies_filters",
    "dilation",
    "erosion",
    "fixed_point_fir",
    "max_dwt_levels",
    "moving_average",
    "moving_sum",
    "opening",
    "orthogonal_dwt_matrix",
    "quantization_snr_db",
    "sliding_max",
    "sliding_min",
]
