"""ECG delineation: R-peak detection, wavelet and MMD delineators (§III-C)."""

from .evaluation import (
    BEAT_MATCH_TOLERANCE_S,
    DEFAULT_TOLERANCES_S,
    DelineationReport,
    FiducialScore,
    PresenceScore,
    evaluate_delineation,
)
from .mmd_delineator import MmdDelineator, MmdDelineatorConfig, mmd_transform
from .resources import (
    McuProfile,
    ResourceEstimate,
    mmd_delineator_resources,
    wavelet_delineator_resources,
)
from .rpeak import RPeakConfig, RPeakDetector, detect_r_peaks
from .wavelet_delineator import (
    WaveletDelineator,
    WaveletDelineatorConfig,
    robust_noise_level,
)

__all__ = [
    "BEAT_MATCH_TOLERANCE_S",
    "DEFAULT_TOLERANCES_S",
    "DelineationReport",
    "FiducialScore",
    "McuProfile",
    "MmdDelineator",
    "MmdDelineatorConfig",
    "PresenceScore",
    "RPeakConfig",
    "RPeakDetector",
    "ResourceEstimate",
    "WaveletDelineator",
    "WaveletDelineatorConfig",
    "detect_r_peaks",
    "evaluate_delineation",
    "mmd_delineator_resources",
    "mmd_transform",
    "robust_noise_level",
    "wavelet_delineator_resources",
]
