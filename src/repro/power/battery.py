"""Battery-lifetime estimation ("mean time between charges is typically
one week", paper §V).

Small wearables carry 100-200 mAh lithium-polymer cells; this module turns
an average node power into a recharge interval, including self-discharge
and a usable-capacity derating.  :class:`Battery` is the immutable cell
spec; :class:`BatteryModel` tracks a state of charge over a simulated
stretch so closed-loop policies (:mod:`repro.power.governor`) can react
to the remaining budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Battery:
    """A small LiPo cell.

    Attributes:
        capacity_mah: Nominal capacity.
        voltage_v: Nominal cell voltage.
        usable_fraction: Usable depth of discharge (protection cutoffs,
            converter efficiency).
        self_discharge_per_month: Monthly self-discharge fraction.
    """

    capacity_mah: float = 150.0
    voltage_v: float = 3.7
    usable_fraction: float = 0.85
    self_discharge_per_month: float = 0.05

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.voltage_v <= 0:
            raise ValueError("capacity and voltage must be positive")
        if not 0 < self.usable_fraction <= 1:
            raise ValueError("usable_fraction must lie in (0, 1]")

    @property
    def usable_energy_j(self) -> float:
        """Usable energy in joules."""
        return (self.capacity_mah / 1000.0) * 3600.0 * self.voltage_v \
            * self.usable_fraction

    def self_discharge_power_w(self) -> float:
        """Average self-discharge drain."""
        month_s = 30 * 24 * 3600.0
        return self.usable_energy_j * self.self_discharge_per_month / month_s

    def lifetime_days(self, average_power_w: float) -> float:
        """Days between charges at a given average node power."""
        if average_power_w < 0:
            raise ValueError("average power must be non-negative")
        drain = average_power_w + self.self_discharge_power_w()
        if drain == 0:
            return float("inf")
        return self.usable_energy_j / drain / 86400.0


@dataclass
class BatteryModel:
    """Stateful battery: a :class:`Battery` cell plus a state of charge.

    The state of charge (SoC) is the fraction of *usable* energy
    remaining, so ``soc == 0`` is the protection cutoff, not a damaged
    cell.  Draining past empty clamps at zero (end of discharge): the
    converter browns the node out and no further energy can be drawn —
    callers should treat an :attr:`empty` battery as a dead radio.

    Attributes:
        cell: The immutable cell specification.
        soc: State of charge in ``[0, 1]`` (fraction of usable energy).
    """

    cell: Battery = field(default_factory=Battery)
    soc: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.soc <= 1.0:
            raise ValueError("soc must lie in [0, 1]")

    @property
    def energy_remaining_j(self) -> float:
        """Usable joules left at the current state of charge."""
        return self.soc * self.cell.usable_energy_j

    @property
    def empty(self) -> bool:
        """End of discharge reached (protection cutoff)."""
        return self.soc <= 0.0

    def drain(self, power_w: float, dt_s: float) -> float:
        """Draw ``power_w`` for ``dt_s`` seconds; return the new SoC.

        Self-discharge is charged on top of the load.  The SoC clamps at
        zero — once empty, further draining is a no-op (the node is
        browned out, it cannot draw more than the cell holds).
        """
        if power_w < 0:
            raise ValueError("power must be non-negative")
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        if self.empty:
            return self.soc
        drawn = (power_w + self.cell.self_discharge_power_w()) * dt_s
        self.soc = max(0.0, self.soc - drawn / self.cell.usable_energy_j)
        return self.soc

    def recharge(self, soc: float = 1.0) -> None:
        """Reset the state of charge (a charging dock visit)."""
        if not 0.0 <= soc <= 1.0:
            raise ValueError("soc must lie in [0, 1]")
        self.soc = soc

    def hours_to_empty(self, power_w: float) -> float:
        """Projected hours until end of discharge at a constant load."""
        if power_w < 0:
            raise ValueError("power must be non-negative")
        drain = power_w + self.cell.self_discharge_power_w()
        if drain == 0:
            return float("inf")
        return self.energy_remaining_j / drain / 3600.0
