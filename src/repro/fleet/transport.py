"""Zero-copy payload transport: views, pools and shard fabrics.

Every payload-carrying layer of the fleet runtime (packet codec, shard
result blobs, gateway drain, journal segments) used to copy bytes at
each hand-off: ``tobytes()`` on encode, ``frombuffer(...).copy()`` on
decode, pickling of multi-kilobyte shard blobs through the process
pool's result queue.  This module is the single buffer discipline that
replaces those copies:

* :class:`PayloadView` — a read-only window over someone else's buffer
  with explicit ownership, so a decoded packet can alias the wire
  buffer it arrived in without any risk of write-through corruption;
* :func:`is_aliasable` — the safety rule deciding when a decode may
  return views instead of copies (the backing storage must be
  *immutable* ``bytes``: a ``bytearray`` or socket scratch buffer can
  be mutated after decode, so those still copy);
* :class:`BufferPool` — reusable ``bytearray`` scratch for encode hot
  paths, so steady-state encoding allocates nothing;
* :class:`ShardTransport` — how a shard worker's result blob travels
  home: the :class:`PickleTransport` backend ships the blob through
  the executor's result pickle (works everywhere), the
  :class:`SharedMemoryTransport` backend writes it into a
  ``multiprocessing.shared_memory`` segment and ships only a tiny
  handle, so the parent maps the blob instead of copying it.

Shared-memory segment lifecycle (see ``docs/transport.md``)::

    worker                           parent
    ------                           ------
    publish(blob, tag)
      create segment prefix.tag
      copy blob in, close mapping
      return handle (name + size) -> open(handle)
                                       attach, read-only PayloadView
                                       ... decode + merge (zero-copy)
                                     close(unlink=True)
                                       drop views, unmap, unlink

    crash path: the parent registered every expected tag up front
    (expect(tag)), so close() unlinks segments whose handle never
    arrived; leaked_segments() audits /dev/shm for the run prefix.

Every transport is described by a picklable ``spec`` string
(``"pickle"`` / ``"shm:<prefix>"``) so a worker process can rebuild
its side of the fabric with :func:`make_transport`.
"""

from __future__ import annotations

import itertools
import os
import struct
import sys
from contextlib import contextmanager

import numpy as np

#: Handle tag of a blob travelling inline through the result pickle.
HANDLE_INLINE = b"RPXP"

#: Handle tag of a blob parked in a shared-memory segment.
HANDLE_SHM = b"RPXS"

_SHM_HANDLE_HEAD = struct.Struct("<4sQ")

#: Monotonic run counter keeping shared-memory prefixes of runs created
#: by one process distinct.
_RUN_COUNTER = itertools.count()


class TransportError(RuntimeError):
    """A payload handle cannot be parsed, opened or released."""


def is_aliasable(data) -> bool:
    """May a decoder safely return views into ``data`` instead of copies?

    True only when the backing storage is immutable ``bytes`` — either
    ``data`` itself or the exporter behind a read-only
    :class:`memoryview`.  A ``bytearray`` (or any writable buffer) can
    be mutated or resized after decode, which would silently corrupt or
    invalidate every aliasing view, so those must be copied.
    """
    if isinstance(data, bytes):
        return True
    if isinstance(data, memoryview):
        return data.readonly and isinstance(data.obj, bytes)
    return False


class PayloadView:
    """A read-only window over a pooled or shared buffer.

    The unit the zero-copy layers exchange: a read-only
    :class:`memoryview` plus the object that keeps the backing storage
    alive (a :class:`~multiprocessing.shared_memory.SharedMemory`
    segment, a pooled ``bytearray``, or nothing for plain ``bytes``).
    Arrays built with :meth:`array` alias the buffer and are marked
    non-writeable, so holding one can never corrupt — or be corrupted
    by — the transport layer underneath.

    Args:
        buffer: Any buffer object; coerced to a read-only memoryview.
        owner: Object whose lifetime must cover every view handed out.
    """

    __slots__ = ("view", "owner")

    def __init__(self, buffer, owner=None) -> None:
        self.view = memoryview(buffer).toreadonly()
        self.owner = owner

    def __len__(self) -> int:
        """Length in bytes of the window."""
        return len(self.view)

    def array(self, dtype, count: int = -1,
              offset: int = 0) -> np.ndarray:
        """A read-only numpy view over ``count`` items at ``offset``.

        Zero-copy: the returned array aliases the transport buffer and
        has ``writeable=False``.  ``count=-1`` reads to the end of the
        window.

        Raises:
            TransportError: The requested span falls outside the
                window.
        """
        dtype = np.dtype(dtype)
        if count >= 0:
            end = offset + count * dtype.itemsize
            if end > len(self.view):
                raise TransportError(
                    f"array span [{offset}, {end}) exceeds the "
                    f"{len(self.view)}-byte payload window")
        try:
            return np.frombuffer(self.view, dtype=dtype, count=count,
                                 offset=offset)
        except ValueError as exc:
            raise TransportError(str(exc)) from exc

    def tobytes(self) -> bytes:
        """An owned copy of the window (escape hatch, not the default)."""
        return self.view.tobytes()

    def release(self) -> None:
        """Release the window's memoryview (best effort, idempotent).

        A no-op when arrays built by :meth:`array` are still alive —
        their buffer exports pin the view, and the actual release then
        happens when they are collected.
        """
        try:
            self.view.release()
        except BufferError:
            pass


class BufferPool:
    """Reusable ``bytearray`` scratch for encode hot paths.

    Encoders that write into a leased buffer
    (:func:`~repro.fleet.wire.encode_packet_into`) allocate nothing in
    steady state: the pool hands out cleared buffers that keep their
    grown capacity across leases.  Not thread-safe by design — each
    connection/scheduler owns its own pool, mirroring how each owns its
    own :class:`~repro.fleet.wire.StreamDecoder`.

    Args:
        max_buffers: Retained-buffer cap; extras are dropped to the
            allocator on release.
    """

    def __init__(self, max_buffers: int = 4) -> None:
        if max_buffers < 1:
            raise ValueError("max_buffers must be positive")
        self.max_buffers = int(max_buffers)
        self._free: list[bytearray] = []

    def acquire(self) -> bytearray:
        """An empty buffer (recycled when available, else fresh)."""
        if self._free:
            return self._free.pop()
        return bytearray()

    def release(self, buf: bytearray) -> None:
        """Return a buffer; it is cleared but keeps its capacity."""
        if len(self._free) < self.max_buffers:
            del buf[:]
            self._free.append(buf)

    @contextmanager
    def lease(self):
        """``with pool.lease() as buf:`` — acquire/release pairing."""
        buf = self.acquire()
        try:
            yield buf
        finally:
            self.release(buf)


class ShardTransport:
    """How one shard worker's result blob travels to the parent.

    The worker side calls :meth:`publish` with the encoded blob and
    gets back a small picklable *handle*; the parent side turns the
    handle back into a :class:`PayloadView` with :meth:`open` and
    releases every mapping (plus any orphaned segment) with
    :meth:`close`.  Implementations are described by a picklable
    :attr:`spec` string so the worker process can rebuild its half with
    :func:`make_transport`.
    """

    #: Backend name (``"pickle"`` / ``"shared_memory"``).
    kind = "abstract"

    @property
    def spec(self) -> str:
        """Picklable description a worker rebuilds the fabric from."""
        raise NotImplementedError

    def expect(self, tag: str) -> None:
        """Pre-register a payload tag (crash-safe cleanup hook)."""

    def publish(self, blob, tag: str) -> bytes:
        """Worker side: park ``blob``; return its transport handle."""
        raise NotImplementedError

    def open(self, handle: bytes) -> PayloadView:
        """Parent side: map a published blob back into a view."""
        raise NotImplementedError

    def close(self, unlink: bool = True) -> None:
        """Release every mapping (and unlink segments when asked)."""

    def leaked_segments(self) -> list[str]:
        """Names of this run's segments still present after close."""
        return []


class PickleTransport(ShardTransport):
    """Inline fallback: the blob rides the executor's result pickle.

    Works on every platform and for inline (``n_shards == 1``) runs;
    costs one pickle/unpickle copy of the blob per shard.  The handle
    is the blob itself behind a 4-byte tag, so :meth:`open` is a
    zero-copy slice.
    """

    kind = "pickle"

    @property
    def spec(self) -> str:
        """Always ``"pickle"`` — the backend carries no state."""
        return "pickle"

    def publish(self, blob, tag: str) -> bytes:
        """Tag the blob; it travels inline with the worker result."""
        return HANDLE_INLINE + bytes(blob)

    def open(self, handle: bytes) -> PayloadView:
        """View the inline blob behind its tag (no copy).

        Raises:
            TransportError: The handle does not carry the inline tag.
        """
        if handle[:4] != HANDLE_INLINE:
            raise TransportError(
                f"not an inline payload handle: {bytes(handle[:4])!r}")
        return PayloadView(memoryview(handle)[4:], owner=handle)


class SharedMemoryTransport(ShardTransport):
    """Blob transport over ``multiprocessing.shared_memory`` segments.

    The worker copies its blob into a named segment once; only the
    ~40-byte handle (name + size) crosses the process boundary, and the
    parent maps the segment read-only instead of unpickling a copy.
    Segment names are deterministic (``<prefix>.<tag>``), so the parent
    can unlink a crashed worker's segment without ever having received
    its handle.

    Args:
        prefix: Segment-name prefix shared by both sides; ``None``
            derives a fresh per-run prefix from the PID and a counter.
    """

    kind = "shared_memory"

    def __init__(self, prefix: str | None = None) -> None:
        if prefix is None:
            prefix = f"rpf{os.getpid():x}x{next(_RUN_COUNTER):x}"
        if not prefix or "/" in prefix or ":" in prefix:
            raise TransportError(f"bad segment prefix {prefix!r}")
        self.prefix = prefix
        self._expected: set[str] = set()
        self._open: dict[str, object] = {}
        self._views: dict[str, PayloadView] = {}

    @property
    def spec(self) -> str:
        """``"shm:<prefix>"`` — how workers rebuild their half."""
        return f"shm:{self.prefix}"

    @classmethod
    def available(cls) -> bool:
        """Can this platform host the shared-memory fabric at all?"""
        try:
            from multiprocessing import shared_memory  # noqa: F401
        except ImportError:  # pragma: no cover - always present >= 3.8
            return False
        return True

    def _segment_name(self, tag: str) -> str:
        """Deterministic segment name of one payload tag."""
        if not tag or "." in tag or "/" in tag:
            raise TransportError(f"bad payload tag {tag!r}")
        return f"{self.prefix}.{tag}"

    def expect(self, tag: str) -> None:
        """Register a tag so :meth:`close` can reap it after a crash."""
        self._expected.add(self._segment_name(tag))

    def publish(self, blob, tag: str) -> bytes:
        """Copy ``blob`` into segment ``<prefix>.<tag>``; return handle.

        The worker closes its mapping immediately — the segment lives
        on under its name until the parent unlinks it.  The worker also
        unregisters the segment from its ``resource_tracker`` so the
        *parent's* unlink is the single point of destruction (otherwise
        the tracker double-frees at worker exit and warns).
        """
        from multiprocessing import shared_memory

        name = self._segment_name(tag)
        view = memoryview(blob)
        size = max(1, len(view))
        segment = shared_memory.SharedMemory(name=name, create=True,
                                             size=size)
        try:
            segment.buf[:len(view)] = view
        finally:
            segment.close()
        _untrack_segment(name)
        return _SHM_HANDLE_HEAD.pack(HANDLE_SHM, len(view)) \
            + name.encode("ascii")

    def open(self, handle: bytes) -> PayloadView:
        """Map a published segment as a read-only view (no copy).

        Raises:
            TransportError: Unknown handle tag, truncated handle, or a
                segment that no longer exists.
        """
        from multiprocessing import shared_memory

        buf = memoryview(handle)
        if len(buf) < _SHM_HANDLE_HEAD.size or bytes(buf[:4]) != HANDLE_SHM:
            raise TransportError("not a shared-memory payload handle")
        (_, size) = _SHM_HANDLE_HEAD.unpack_from(buf, 0)
        name = bytes(buf[_SHM_HANDLE_HEAD.size:]).decode("ascii")
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError as exc:
            raise TransportError(
                f"shared-memory segment {name!r} is gone") from exc
        self._open[name] = segment
        view = PayloadView(segment.buf[:size], owner=segment)
        self._views[name] = view
        return view

    def close(self, unlink: bool = True) -> None:
        """Unmap every opened segment; unlink all expected ones.

        Safe after a worker crash or ``KeyboardInterrupt``: segments
        whose handles never arrived are attached by their deterministic
        name and unlinked too.  Unmapping a segment that still has live
        exported views is deferred to garbage collection (the unlink
        still proceeds, so nothing is left in ``/dev/shm``).
        """
        from multiprocessing import shared_memory

        for name in sorted(self._expected - set(self._open)):
            if not unlink:
                continue
            try:
                orphan = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            orphan.close()
            orphan.unlink()
        for name, segment in sorted(self._open.items()):
            view = self._views.pop(name, None)
            if view is not None:
                view.release()
            try:
                segment.close()
            except BufferError:
                # Arrays over the segment are still alive; the mapping
                # is released when they are collected.  The unlink
                # below still removes the name.
                pass
            if unlink:
                try:
                    segment.unlink()
                except FileNotFoundError:
                    _untrack_segment(name)
            else:
                _untrack_segment(name)
        self._open.clear()
        self._views.clear()
        self._expected.clear()

    def leaked_segments(self) -> list[str]:
        """This run's segments still visible to the OS (Linux audit).

        Scans ``/dev/shm`` for the run prefix; returns an empty list on
        platforms without that view (the deterministic-name reaping in
        :meth:`close` is the cross-platform guarantee).
        """
        if not sys.platform.startswith("linux"):  # pragma: no cover
            return []
        try:
            entries = os.listdir("/dev/shm")
        except OSError:  # pragma: no cover - /dev/shm unavailable
            return []
        return sorted(name for name in entries
                      if name.startswith(self.prefix))


def _untrack_segment(name: str) -> None:
    """Drop one segment from ``resource_tracker`` bookkeeping.

    Both sides of the fabric attach and detach segments while the
    *parent's* :meth:`SharedMemoryTransport.close` is the one point of
    destruction; without unregistering, every other process's tracker
    would try to unlink the same name again at interpreter exit and
    warn about it.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def make_transport(spec: str = "auto") -> ShardTransport:
    """Build a transport from its picklable spec string.

    ``"auto"`` picks shared memory where the platform supports it and
    falls back to pickle; ``"pickle"`` / ``"shared_memory"`` force a
    backend; ``"shm:<prefix>"`` rebuilds a worker-side view of an
    existing shared-memory fabric.

    Raises:
        TransportError: Unknown spec, or shared memory requested on a
            platform without it.
    """
    if spec == "auto":
        if SharedMemoryTransport.available():
            return SharedMemoryTransport()
        return PickleTransport()
    if spec == "pickle":
        return PickleTransport()
    if spec == "shared_memory":
        if not SharedMemoryTransport.available():
            raise TransportError(
                "multiprocessing.shared_memory is unavailable here")
        return SharedMemoryTransport()
    if spec.startswith("shm:"):
        return SharedMemoryTransport(prefix=spec[len("shm:"):])
    raise TransportError(f"unknown transport spec {spec!r}")
