"""Unit tests for Gaussian memberships and the 4-segment linearization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classification import (
    PWL_KNOTS,
    PWL_VALUES,
    gaussian_membership,
    membership_ops,
    pwl_max_error,
    pwl_membership,
)


class TestExactMembership:
    def test_peak_at_center(self):
        assert gaussian_membership(2.0, 2.0, 0.5) == pytest.approx(1.0)

    def test_one_sigma_value(self):
        assert gaussian_membership(1.0, 0.0, 1.0) == pytest.approx(
            np.exp(-0.5))

    def test_symmetry(self, rng):
        x = rng.uniform(-3, 3, 100)
        left = gaussian_membership(-x, 0.0, 1.0)
        right = gaussian_membership(x, 0.0, 1.0)
        assert np.allclose(left, right)

    def test_vectorized_centers(self):
        x = np.array([[1.0, 2.0]])
        out = gaussian_membership(x, np.array([1.0, 2.0]),
                                  np.array([1.0, 1.0]))
        assert np.allclose(out, 1.0)


class TestPwlMembership:
    def test_four_segments(self):
        assert PWL_KNOTS.shape[0] == 5  # 4 segments
        assert PWL_VALUES[0] == 1.0
        assert PWL_VALUES[-1] == 0.0

    def test_max_error_bound(self):
        # The grid-searched knots achieve 2.2 % worst-case error.
        assert pwl_max_error() < 0.025

    def test_exact_at_knots(self):
        for knot in PWL_KNOTS[:-1]:
            approx = pwl_membership(knot, 0.0, 1.0)
            exact = gaussian_membership(knot, 0.0, 1.0)
            assert approx == pytest.approx(exact, abs=1e-12)

    def test_zero_beyond_cutoff(self):
        assert pwl_membership(5.0, 0.0, 1.0) == 0.0
        assert pwl_membership(-5.0, 0.0, 1.0) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(u=st.floats(-4.0, 4.0))
    def test_close_to_exact_everywhere(self, u):
        approx = pwl_membership(u, 0.0, 1.0)
        exact = gaussian_membership(u, 0.0, 1.0)
        assert abs(approx - exact) < 0.025

    @settings(max_examples=30, deadline=None)
    @given(u=st.floats(0.0, 3.9))
    def test_monotone_decay(self, u):
        nearer = pwl_membership(u, 0.0, 1.0)
        farther = pwl_membership(u + 0.1, 0.0, 1.0)
        assert farther <= nearer + 1e-12

    def test_scales_with_sigma(self):
        wide = pwl_membership(1.0, 0.0, 2.0)
        narrow = pwl_membership(1.0, 0.0, 0.5)
        assert wide > narrow


class TestOpsModel:
    def test_pwl_cheaper_than_exact(self):
        pwl = membership_ops("pwl")
        exact = membership_ops("exact")
        assert pwl["multiplications"] < exact["multiplications"] / 5

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown membership"):
            membership_ops("table")
