"""Unit tests for the node-side CS encoders."""

import numpy as np
import pytest

from repro.compression import (
    CsEncoder,
    MultiLeadCsEncoder,
    raw_payload_bits,
    reconstruction_snr_db,
)


class TestCsEncoder:
    def test_cr_realized(self):
        encoder = CsEncoder(n=256, cr_percent=60.0)
        assert encoder.cr_percent >= 60.0
        assert encoder.m == int(256 * 0.4)

    def test_encode_applies_matrix(self, rng):
        encoder = CsEncoder(n=128, cr_percent=50.0, quant_bits=16)
        x = rng.standard_normal(128)
        encoded = encoder.encode(x)
        exact = encoder.sensing.matrix @ x
        assert np.max(np.abs(encoded.measurements - exact)) < \
            np.max(np.abs(exact)) / 2 ** 12

    def test_quantization_error_bounded(self, rng):
        encoder = CsEncoder(n=256, cr_percent=50.0, quant_bits=12)
        x = rng.standard_normal(256)
        encoded = encoder.encode(x)
        exact = encoder.sensing.matrix @ x
        assert reconstruction_snr_db(exact, encoded.measurements) > 55.0

    def test_window_length_checked(self):
        encoder = CsEncoder(n=256)
        with pytest.raises(ValueError, match="expected window"):
            encoder.encode(np.zeros(100))

    def test_payload_accounting(self):
        encoder = CsEncoder(n=256, cr_percent=50.0, quant_bits=12)
        assert encoder.payload_bits_per_window() == 128 * 12 + 16

    def test_additions_accounting(self):
        encoder = CsEncoder(n=256, cr_percent=50.0, d=12)
        encoded = encoder.encode(np.zeros(256))
        assert encoded.additions == 256 * 12
        assert encoder.additions_per_sample() == pytest.approx(12.0)

    def test_zero_window(self):
        encoder = CsEncoder(n=64)
        encoded = encoder.encode(np.zeros(64))
        assert np.all(encoded.measurements == 0.0)

    def test_quant_bits_validated(self):
        with pytest.raises(ValueError, match="quantization bits"):
            CsEncoder(n=64, quant_bits=1)

    def test_same_seed_same_matrix(self):
        a = CsEncoder(n=64, seed=5)
        b = CsEncoder(n=64, seed=5)
        assert np.array_equal(a.sensing.matrix, b.sensing.matrix)

    def test_encode_multilead_uses_same_matrix(self, rng):
        encoder = CsEncoder(n=64, cr_percent=50.0)
        windows = rng.standard_normal((3, 64))
        encoded = encoder.encode_multilead(windows)
        assert len(encoded) == 3


class TestMultiLeadCsEncoder:
    def test_per_lead_matrices_differ(self):
        encoder = MultiLeadCsEncoder(n_leads=3, n=64)
        a, b = encoder.sensing_matrices[0], encoder.sensing_matrices[1]
        assert not np.array_equal(a.matrix, b.matrix)

    def test_encode_shape_checked(self, rng):
        encoder = MultiLeadCsEncoder(n_leads=3, n=64)
        with pytest.raises(ValueError, match="expected 3 leads"):
            encoder.encode(rng.standard_normal((2, 64)))

    def test_payload_sums_leads(self):
        encoder = MultiLeadCsEncoder(n_leads=3, n=256, cr_percent=50.0,
                                     quant_bits=12)
        assert encoder.payload_bits_per_window() == 3 * (128 * 12 + 16)

    def test_additions_sum_leads(self):
        encoder = MultiLeadCsEncoder(n_leads=3, n=256, cr_percent=50.0,
                                     d=12)
        assert encoder.additions_per_window() == 3 * 256 * 12

    def test_needs_a_lead(self):
        with pytest.raises(ValueError, match="at least one lead"):
            MultiLeadCsEncoder(n_leads=0)


class TestRawPayload:
    def test_raw_payload_math(self):
        assert raw_payload_bits(500, 12) == 6000
