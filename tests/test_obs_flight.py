"""Tests for the gateway flight recorder (`repro.obs.flight`)."""

from __future__ import annotations

import json

import pytest

from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    Gateway,
    GatewayConfig,
    NodeProxyConfig,
    SchedulerConfig,
    WireFormatError,
    make_cohort,
)
from repro.obs import (
    ANOMALY_ALARM_BURST,
    ANOMALY_NAN_GUARD,
    ANOMALY_WIRE_ERROR,
    FlightRecorder,
    Observability,
    ObsConfig,
    load_flight_dump,
)


class TestRings:
    def test_frame_ring_is_bounded_last_n(self):
        rec = FlightRecorder(ring_size=3)
        for i in range(6):
            rec.record_frame("p0", bytes([i]))
        record = rec.anomaly("test", "p0", 1.0)
        assert record.packets() == [b"\x03", b"\x04", b"\x05"]

    def test_rings_are_per_channel(self):
        rec = FlightRecorder(ring_size=4)
        rec.record_frame("p0", b"a")
        rec.record_frame("p1", b"b")
        rec.record_event("p1", {"name": "e"})
        record = rec.anomaly("test", "p1", 2.0)
        assert record.packets() == [b"b"]
        assert record.events == [{"name": "e"}]

    def test_snapshot_counts(self):
        rec = FlightRecorder(ring_size=8)
        rec.record_frame("p0", b"x")
        rec.anomaly("nan-guard", "p0", 1.0)
        rec.anomaly("nan-guard", "p0", 2.0)
        snap = rec.snapshot()
        assert snap == {"ring_size": 8, "n_channels": 1,
                        "n_anomalies": 2,
                        "anomaly_kinds": ["nan-guard"]}


class TestAlarmBurst:
    def test_burst_trips_inside_window_only(self):
        rec = FlightRecorder(alarm_burst_threshold=3,
                             alarm_burst_window_s=10.0)
        assert not rec.note_alarm("p0", 1.0)
        assert not rec.note_alarm("p0", 2.0)
        assert rec.note_alarm("p0", 3.0)
        # Spread alarms never trip: old ones age out of the window.
        assert not rec.note_alarm("p1", 0.0)
        assert not rec.note_alarm("p1", 20.0)
        assert not rec.note_alarm("p1", 40.0)

    def test_channels_do_not_share_burst_state(self):
        rec = FlightRecorder(alarm_burst_threshold=2,
                             alarm_burst_window_s=10.0)
        assert not rec.note_alarm("p0", 1.0)
        assert not rec.note_alarm("p1", 1.5)
        assert rec.note_alarm("p0", 2.0)


class TestDumps:
    def test_dump_write_and_load_roundtrip(self, tmp_path):
        rec = FlightRecorder(ring_size=4, dump_dir=tmp_path)
        rec.record_frame("p0", b"\x00\x01")
        rec.record_event("p0", {"name": "gateway.ingest", "t_s": 4.0})
        record = rec.anomaly(ANOMALY_NAN_GUARD, "p0", 4.125,
                             detail_code=7)
        # Virtual-time file name: identical across seeded reruns.
        assert record.path.endswith("flight_nan-guard_p0_t4_125.json")
        loaded = load_flight_dump(record.path)
        assert loaded.kind == ANOMALY_NAN_GUARD
        assert loaded.subject == "p0"
        assert loaded.packets() == [b"\x00\x01"]
        assert loaded.events == [{"name": "gateway.ingest", "t_s": 4.0}]
        assert loaded.detail == {"detail_code": 7}

    def test_dump_bytes_are_deterministic(self, tmp_path):
        def dump(sub_dir):
            rec = FlightRecorder(dump_dir=tmp_path / sub_dir)
            rec.record_frame("p0", b"abc")
            return rec.anomaly("wire-error", "p0", 1.0, error="bad").path

        first, second = dump("a"), dump("b")
        assert json.loads(open(first).read()) \
            == json.loads(open(second).read())
        assert open(first).read() == open(second).read()

    def test_no_dump_dir_keeps_anomaly_in_memory(self):
        rec = FlightRecorder()
        record = rec.anomaly("test", "p0", 1.0)
        assert record.path is None
        assert rec.anomalies == [record]


class TestGatewayIntegration:
    def test_wire_error_trips_anomaly_and_reraises(self, tmp_path):
        obs = Observability(ObsConfig(flight_dump_dir=tmp_path))
        gateway = Gateway(GatewayConfig(), obs=obs)
        obs.set_virtual_time(12.0)
        with pytest.raises(WireFormatError):
            gateway.ingest(b"\xde\xad\xbe\xef")
        assert [a.kind for a in obs.flight.anomalies] \
            == [ANOMALY_WIRE_ERROR]
        record = obs.flight.anomalies[0]
        assert record.t_s == 12.0
        assert record.path is not None
        assert load_flight_dump(record.path).detail["frame_b64"]

    def test_wire_frames_recorded_and_replayable(self):
        cohort = make_cohort(CohortConfig(n_patients=2, seed=7))
        obs = Observability()
        scheduler = FleetScheduler(
            cohort,
            SchedulerConfig(duration_s=60.0, fs=250.0,
                            wire_loopback=True),
            node_config=NodeProxyConfig(stream_telemetry=False),
            obs=obs)
        fleet = scheduler.run()
        pid = cohort[0].patient_id
        record = obs.flight.anomaly("manual", pid, 60.0)
        frames = record.packets()
        assert frames, "wire loopback should populate the frame ring"
        # Offline replay: the dumped frames drive a fresh gateway.
        replay = Gateway(GatewayConfig())
        for frame in frames:
            replay.ingest(frame)
        replay.drain()
        assert replay.channels[pid].n_excerpts > 0
        assert fleet.summary.dropped_packets == 0

    def test_alarm_burst_anomaly_from_gateway(self):
        # Synthetic: drive note_alarm through the recorder exactly as
        # Gateway._note_processed does, with a tiny threshold.
        obs = Observability(ObsConfig(alarm_burst_threshold=2,
                                      alarm_burst_window_s=5.0))
        assert not obs.flight.note_alarm("p0", 1.0)
        assert obs.flight.note_alarm("p0", 2.0)
        obs.flight.anomaly(ANOMALY_ALARM_BURST, "p0", 2.0)
        assert obs.flight.snapshot()["anomaly_kinds"] \
            == [ANOMALY_ALARM_BURST]
