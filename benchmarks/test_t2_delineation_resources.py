"""T2 (in-text §V) — wavelet delineation footprint: 7 % duty, 7.2 kB.

Paper: the embedded wavelet delineator needs "only a fraction of the
resources (7 % of the duty cycle and 7.2 kB of memory)".  The bench
derives both figures from the streaming algorithm's per-sample operation
counts and buffer inventory on the MSP430-class MCU model.
"""

from __future__ import annotations

from conftest import print_table
from repro.delineation import (
    mmd_delineator_resources,
    wavelet_delineator_resources,
)


def run_estimates():
    return (wavelet_delineator_resources(fs=250.0),
            mmd_delineator_resources(fs=250.0))


def test_t2_resources(benchmark):
    wavelet, mmd = benchmark.pedantic(run_estimates, rounds=1, iterations=1)
    rows = [
        ("wavelet [12]", 100 * wavelet.duty_cycle, wavelet.memory_kb,
         wavelet.cycles_per_sample),
        ("MMD [13]", 100 * mmd.duty_cycle, mmd.memory_kb,
         mmd.cycles_per_sample),
        ("paper (wavelet)", 7.0, 7.2, "-"),
    ]
    print_table("T2: delineator footprint at 250 Hz on a 1 MHz ULP MCU",
                ["algorithm", "duty [%]", "memory [kB]", "cyc/sample"],
                rows)
    # Paper bands: single-digit duty cycle, ~7 kB memory.
    assert 0.02 <= wavelet.duty_cycle <= 0.12
    assert 5.0 <= wavelet.memory_kb <= 9.5
    # The §IV-A optimization: flat-SE morphology is cheaper per sample.
    assert mmd.cycles_per_sample < wavelet.cycles_per_sample


def test_t2_memory_breakdown(benchmark):
    estimate = benchmark.pedantic(wavelet_delineator_resources, rounds=1,
                                  iterations=1)
    rows = [(name, bytes_ / 1024.0)
            for name, bytes_ in sorted(estimate.breakdown.items(),
                                       key=lambda kv: -kv[1])]
    print_table("T2: wavelet delineator memory itemization",
                ["component", "kB"], rows)
    assert sum(b for _, b in rows) * 1024 == estimate.memory_bytes
