"""Tests for the batched fleet scheduler."""

import numpy as np
import pytest

from repro.compression import MultiLeadCsEncoder
from repro.fleet import (
    BatchExcerptEncoder,
    CohortConfig,
    FleetScheduler,
    Gateway,
    GatewayConfig,
    NodeProxyConfig,
    SchedulerConfig,
    make_cohort,
)

FAST_NODE = NodeProxyConfig(stream_telemetry=False)


class TestBatchExcerptEncoder:
    def test_matches_scalar_encoder(self, rng):
        batch = rng.normal(size=(6, 3, 256))
        batched = BatchExcerptEncoder(n_leads=3, n=256, cr_percent=60.0,
                                      seed=11)
        scalar = MultiLeadCsEncoder(n_leads=3, n=256, cr_percent=60.0,
                                    seed=11)
        frames = batched.encode_batch(batch)
        for p in range(batch.shape[0]):
            reference = scalar.encode(batch[p])
            for lead in range(3):
                np.testing.assert_allclose(
                    frames[p][lead].measurements,
                    reference[lead].measurements, rtol=1e-10, atol=1e-12)
                assert frames[p][lead].scale == \
                    pytest.approx(reference[lead].scale)
                assert frames[p][lead].payload_bits == \
                    reference[lead].payload_bits
                assert frames[p][lead].additions == reference[lead].additions

    def test_zero_window_encodes_to_zero(self):
        batched = BatchExcerptEncoder(n_leads=1, n=128)
        frames = batched.encode_batch(np.zeros((2, 1, 128)))
        np.testing.assert_array_equal(frames[0][0].measurements,
                                      np.zeros(batched.template.m))
        assert frames[0][0].scale == 1.0

    def test_shape_validation(self):
        batched = BatchExcerptEncoder(n_leads=3, n=256)
        with pytest.raises(ValueError, match="shape"):
            batched.encode_batch(np.zeros((4, 2, 256)))


@pytest.fixture(scope="module")
def small_fleet_report():
    cohort = make_cohort(CohortConfig(n_patients=6, seed=5))
    scheduler = FleetScheduler(
        cohort, SchedulerConfig(duration_s=120.0), node_config=FAST_NODE)
    return cohort, scheduler.run()


class TestFleetRun:
    def test_reports_for_every_patient(self, small_fleet_report):
        cohort, report = small_fleet_report
        assert set(report.node_reports) == {p.patient_id for p in cohort}

    def test_one_excerpt_per_patient_per_tick(self, small_fleet_report):
        cohort, report = small_fleet_report
        n_ticks = 2  # 120 s at the default 60 s period
        excerpts = [e for e in report.excerpts if e.kind == "excerpt"]
        assert len(excerpts) == len(cohort) * n_ticks
        alarms = [e for e in report.excerpts if e.kind == "alarm"]
        assert report.packets_sent == len(excerpts) + len(alarms)

    def test_summary_consistency(self, small_fleet_report):
        cohort, report = small_fleet_report
        summary = report.summary
        assert summary.n_patients == len(cohort)
        assert summary.node_alarms == sum(
            len(r.alarms) for r in report.node_reports.values())
        assert sum(summary.state_counts.values()) <= len(cohort)
        assert np.isfinite(summary.uplink_bytes_per_patient_day)
        assert np.isfinite(summary.mean_battery_days)
        assert summary.dropped_packets == 0
        assert report.patients_per_second > 0

    def test_workers_match_inline(self):
        # The thread-pool path must produce the same fleet outcome.
        cohort = make_cohort(CohortConfig(n_patients=4, seed=8))
        outcomes = []
        for workers in (0, 2):
            scheduler = FleetScheduler(
                cohort, SchedulerConfig(duration_s=60.0, workers=workers),
                node_config=FAST_NODE)
            report = scheduler.run()
            outcomes.append((
                report.packets_sent,
                report.summary.node_alarms,
                report.summary.state_counts,
                round(report.summary.uplink_bytes_per_patient_day, 6),
            ))
        assert outcomes[0] == outcomes[1]

    def test_drain_budget_processes_backlog_eventually(self):
        cohort = make_cohort(CohortConfig(n_patients=4, seed=8))
        scheduler = FleetScheduler(
            cohort, SchedulerConfig(duration_s=120.0, drain_per_tick=1),
            node_config=FAST_NODE)
        report = scheduler.run()
        # All offered packets still processed by the final drain.
        assert len(report.excerpts) == report.packets_sent
        assert scheduler.gateway.pending == 0

    def test_bounded_queue_drops_under_pressure(self):
        cohort = make_cohort(CohortConfig(n_patients=6, seed=5))
        scheduler = FleetScheduler(
            cohort, SchedulerConfig(duration_s=120.0, drain_per_tick=0),
            node_config=FAST_NODE,
            gateway=Gateway(GatewayConfig(queue_capacity=3)))
        report = scheduler.run()
        assert report.summary.dropped_packets > 0
        assert len(report.excerpts) + report.summary.dropped_packets == \
            report.packets_sent

    def test_empty_cohort_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            FleetScheduler([])

    def test_alarms_survive_subperiod_run(self, trained_af_detector):
        # duration < excerpt period: no periodic ticks, but node alarms
        # must still reach the gateway.
        from repro.fleet import PatientProfile

        cohort = [PatientProfile(patient_id="afq", rhythm="af",
                                 snr_db=None, seed=42)]
        scheduler = FleetScheduler(
            cohort, SchedulerConfig(duration_s=45.0), node_config=FAST_NODE,
            af_detector=trained_af_detector)
        report = scheduler.run()
        assert report.summary.node_alarms >= 1
        alarms = [e for e in report.excerpts if e.kind == "alarm"]
        assert len(alarms) == report.summary.node_alarms
        assert report.packets_sent == len(report.excerpts)
