"""Radio duty-cycling policies (extends the Fig. 6 node model).

The Fig. 6 scenarios charge one radio burst per window; a deployed node
additionally pays for link maintenance: periodic beacon listening (to stay
associated with the base station) and wake-ups that find nothing to send.
This module models those standing costs so the battery estimates of the
pipeline cover the full radio budget, and exposes the burst-batching
trade-off (larger batches amortize wake-up overhead at the cost of
latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .radio import Ieee802154Link, RadioModel


@dataclass(frozen=True)
class DutyCyclePolicy:
    """Link-maintenance schedule.

    Attributes:
        beacon_interval_s: Period of base-station beacon listening.
        beacon_listen_s: RX window per beacon (guard + beacon airtime).
        batch_interval_s: Application payload is queued and sent in one
            burst per interval (latency/energy knob).
    """

    beacon_interval_s: float = 5.0
    beacon_listen_s: float = 0.004
    batch_interval_s: float = 2.0

    def __post_init__(self) -> None:
        if self.beacon_interval_s <= 0 or self.batch_interval_s <= 0:
            raise ValueError("intervals must be positive")
        if self.beacon_listen_s < 0:
            raise ValueError("listen window must be non-negative")


@dataclass
class DutyCycledRadio:
    """Average radio power under a duty-cycling policy.

    Args:
        link: Framing/energy model of the data link.
        policy: Maintenance schedule.
    """

    link: Ieee802154Link = field(default_factory=Ieee802154Link)
    policy: DutyCyclePolicy = field(default_factory=DutyCyclePolicy)

    def maintenance_power_w(self) -> float:
        """Standing power of beacon listening (RX windows + startups)."""
        radio: RadioModel = self.link.radio
        per_beacon = (self.policy.beacon_listen_s * radio.rx_power_w
                      + radio.startup_energy_j)
        return per_beacon / self.policy.beacon_interval_s

    def payload_power_w(self, payload_bits_per_s: float) -> float:
        """Average TX power for a payload rate under burst batching."""
        if payload_bits_per_s < 0:
            raise ValueError("payload rate must be non-negative")
        batch_bits = payload_bits_per_s * self.policy.batch_interval_s
        if batch_bits == 0:
            return 0.0
        cost = self.link.transmit(int(round(batch_bits)), wakeups=1)
        return cost.energy_j / self.policy.batch_interval_s

    def average_power_w(self, payload_bits_per_s: float) -> float:
        """Total average radio power (payload + maintenance)."""
        return (self.payload_power_w(payload_bits_per_s)
                + self.maintenance_power_w())

    def batching_gain(self, payload_bits_per_s: float,
                      small_interval_s: float = 0.25) -> float:
        """Power ratio of un-batched vs batched transmission (> 1).

        Quantifies why the node queues data: many small bursts pay the
        per-wake-up and per-frame overheads repeatedly.
        """
        eager = DutyCycledRadio(
            self.link,
            DutyCyclePolicy(
                beacon_interval_s=self.policy.beacon_interval_s,
                beacon_listen_s=self.policy.beacon_listen_s,
                batch_interval_s=small_interval_s,
            ),
        )
        batched = self.payload_power_w(payload_bits_per_s)
        if batched == 0.0:
            return 1.0
        return eager.payload_power_w(payload_bits_per_s) / batched
