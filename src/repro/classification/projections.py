"""Random-projection feature extraction (refs [14][15], §III-D).

Heartbeat windows are projected onto a small number of random directions.
Achlioptas's database-friendly construction draws entries from
``sqrt(3) * {+1, 0, -1}`` with probabilities {1/6, 2/3, 1/6}: two thirds of
the multiplies vanish and the rest are sign flips, so the node computes
each feature with a handful of integer additions, and the matrix is stored
at two bits per entry (§IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compression.matrices import (
    PackedTernary,
    SensingMatrix,
    dense_sign_matrix,
    gaussian_matrix,
    pack_ternary,
    ternary_matrix,
)

_CONSTRUCTORS = {
    "ternary": ternary_matrix,
    "dense_sign": dense_sign_matrix,
    "gaussian": gaussian_matrix,
}


@dataclass(frozen=True)
class ProjectionCost:
    """Embedded cost of computing one feature vector.

    Attributes:
        additions: Integer additions per beat window.
        multiplications: Integer multiplications per beat window.
        storage_bytes: Bytes needed to hold the projection matrix.
    """

    additions: int
    multiplications: int
    storage_bytes: int


class RandomProjector:
    """Projects fixed-length beat windows to ``k`` random features.

    Args:
        window: Input window length in samples.
        k: Number of output features (the paper's point is that small
            ``k`` suffices; 16-32 is typical).
        kind: ``ternary`` (default, the paper's choice), ``dense_sign``
            or ``gaussian`` (dense baselines for the T4 ablation).
        seed: Matrix construction seed.
    """

    def __init__(self, window: int, k: int = 24, kind: str = "ternary",
                 seed: int = 11) -> None:
        if kind not in _CONSTRUCTORS:
            raise ValueError(f"unknown projection kind {kind!r}; "
                             f"choose from {sorted(_CONSTRUCTORS)}")
        if window < 1 or k < 1:
            raise ValueError("window and k must be positive")
        self.kind = kind
        rng = np.random.default_rng(seed)
        self.sensing: SensingMatrix = _CONSTRUCTORS[kind](k, window, rng)

    @property
    def k(self) -> int:
        """Number of features."""
        return self.sensing.m

    @property
    def window(self) -> int:
        """Expected input window length."""
        return self.sensing.n

    def project(self, windows: np.ndarray) -> np.ndarray:
        """Project one window (1-D) or a batch (``(n_beats, window)``)."""
        windows = np.asarray(windows, dtype=float)
        single = windows.ndim == 1
        batch = np.atleast_2d(windows)
        if batch.shape[1] != self.window:
            raise ValueError(f"expected windows of {self.window} samples, "
                             f"got {batch.shape[1]}")
        features = batch @ self.sensing.matrix.T
        return features[0] if single else features

    def packed(self) -> PackedTernary:
        """2-bit packed matrix (raises for non-ternary kinds)."""
        return pack_ternary(self.sensing)

    def cost(self) -> ProjectionCost:
        """Embedded cost model of the projection."""
        nnz = self.sensing.nnz
        if self.kind in ("ternary", "dense_sign"):
            # Sign alphabet: adds/subtracts only; the sqrt(3) scale folds
            # into the classifier constants.
            storage = int(np.ceil(2 * self.k * self.window / 8))
            return ProjectionCost(additions=nnz, multiplications=0,
                                  storage_bytes=storage)
        storage = 2 * self.k * self.window  # 16-bit fixed-point entries
        return ProjectionCost(additions=nnz, multiplications=nnz,
                              storage_bytes=storage)
