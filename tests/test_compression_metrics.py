"""Unit tests for repro.compression.metrics (CR/PRD/SNR, Fig. 5 axes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    compression_ratio,
    measurements_for_cr,
    prd_percent,
    reconstruction_snr_db,
    snr_crossing_cr,
)


class TestCompressionRatio:
    def test_basic_values(self):
        assert compression_ratio(100, 100) == 0.0
        assert compression_ratio(100, 50) == 50.0
        assert compression_ratio(100, 25) == 75.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compression_ratio(100, 0)
        with pytest.raises(ValueError):
            compression_ratio(100, 101)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(10, 1024), cr=st.floats(0.0, 99.0))
    def test_measurements_roundtrip(self, n, cr):
        m = measurements_for_cr(n, cr)
        assert 1 <= m <= n
        assert compression_ratio(n, m) >= cr - 100.0 / n

    def test_measurements_invalid_cr(self):
        with pytest.raises(ValueError):
            measurements_for_cr(100, 100.0)


class TestPrdSnr:
    def test_perfect_reconstruction(self):
        x = np.sin(np.linspace(0, 10, 500))
        assert prd_percent(x, x) == 0.0
        assert reconstruction_snr_db(x, x) == np.inf

    def test_prd_snr_relation(self, rng):
        x = rng.standard_normal(500)
        xr = x + 0.1 * rng.standard_normal(500)
        prd = prd_percent(x, xr)
        snr = reconstruction_snr_db(x, xr)
        assert snr == pytest.approx(-20 * np.log10(prd / 100), abs=1e-9)

    def test_twenty_db_is_ten_percent_prd(self, rng):
        x = rng.standard_normal(10_000)
        noise = rng.standard_normal(10_000)
        noise *= 0.1 * np.linalg.norm(x) / np.linalg.norm(noise)
        assert reconstruction_snr_db(x, x + noise) == pytest.approx(20.0,
                                                                    abs=1e-6)

    def test_zero_reference(self):
        assert prd_percent(np.zeros(5), np.zeros(5)) == 0.0
        assert prd_percent(np.zeros(5), np.ones(5)) == np.inf
        assert reconstruction_snr_db(np.zeros(5), np.ones(5)) == -np.inf


class TestCrossing:
    def test_interpolated_crossing(self):
        crs = np.array([40.0, 60.0, 80.0])
        snrs = np.array([30.0, 20.0, 10.0])
        assert snr_crossing_cr(crs, snrs, 20.0) == pytest.approx(60.0)
        assert snr_crossing_cr(crs, snrs, 15.0) == pytest.approx(70.0)

    def test_unsorted_input(self):
        crs = np.array([80.0, 40.0, 60.0])
        snrs = np.array([10.0, 30.0, 20.0])
        assert snr_crossing_cr(crs, snrs, 25.0) == pytest.approx(50.0)

    def test_never_reaches_threshold(self):
        crs = np.array([40.0, 60.0])
        snrs = np.array([15.0, 10.0])
        assert np.isnan(snr_crossing_cr(crs, snrs, 20.0))

    def test_always_above_threshold(self):
        crs = np.array([40.0, 60.0])
        snrs = np.array([30.0, 25.0])
        assert snr_crossing_cr(crs, snrs, 20.0) == 60.0

    def test_non_monotone_curve_takes_last_crossing(self):
        crs = np.array([40.0, 50.0, 60.0, 70.0])
        snrs = np.array([25.0, 19.0, 21.0, 15.0])
        crossing = snr_crossing_cr(crs, snrs, 20.0)
        assert 60.0 <= crossing <= 70.0
