"""Neuro-fuzzy classifier over random-projection features (ref [14]).

One fuzzy rule per class: every feature contributes a Gaussian membership
centred on the class's training mean with the class's training spread; the
rule activation aggregates memberships with a t-norm (product by default,
minimum as the cheaper embedded alternative).  Prediction picks the class
with the strongest activation.  The memberships can be evaluated exactly
or with the 4-segment linearization of §IV-A, which is the knob the T4
benchmark ablates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .gaussian import gaussian_membership, pwl_membership

_EPS_LOG = 1e-30


@dataclass
class FuzzyRule:
    """Per-class Gaussian membership parameters.

    Attributes:
        label: Class label.
        centers: Feature means, shape ``(k,)``.
        sigmas: Feature spreads, shape ``(k,)``.
        prior: Class prior weight (training frequency).
    """

    label: str
    centers: np.ndarray
    sigmas: np.ndarray
    prior: float = 1.0


@dataclass
class NeuroFuzzyClassifier:
    """Fuzzy rule-based classifier with Gaussian memberships.

    Args:
        membership: ``"exact"`` or ``"pwl"`` (4-segment linearization).
        tnorm: ``"product"`` (log-sum, numerically robust) or ``"min"``.
        sigma_floor: Lower bound on learned spreads, as a fraction of the
            feature's global spread (guards against degenerate classes).
        use_priors: Weight rule activations by training frequency.
    """

    membership: str = "exact"
    tnorm: str = "product"
    sigma_floor: float = 0.05
    use_priors: bool = False
    rules: list[FuzzyRule] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.membership not in ("exact", "pwl"):
            raise ValueError("membership must be 'exact' or 'pwl'")
        if self.tnorm not in ("product", "min"):
            raise ValueError("tnorm must be 'product' or 'min'")

    @property
    def classes(self) -> list[str]:
        """Learned class labels."""
        return [rule.label for rule in self.rules]

    def fit(self, features: np.ndarray, labels: np.ndarray,
            ) -> "NeuroFuzzyClassifier":
        """Learn one rule per class from labelled feature vectors.

        Args:
            features: Array of shape ``(n_samples, k)``.
            labels: Class label per sample.

        Returns:
            self (for chaining).

        Raises:
            ValueError: If fewer than two classes are present.
        """
        features = np.atleast_2d(np.asarray(features, dtype=float))
        labels = np.asarray(labels)
        unique = sorted(set(labels.tolist()))
        if len(unique) < 2:
            raise ValueError("need at least two classes to fit")
        global_spread = np.std(features, axis=0)
        global_spread[global_spread == 0] = 1.0
        floor = self.sigma_floor * global_spread
        self.rules = []
        for label in unique:
            rows = features[labels == label]
            centers = rows.mean(axis=0)
            sigmas = np.maximum(rows.std(axis=0), floor)
            prior = rows.shape[0] / features.shape[0]
            self.rules.append(FuzzyRule(label=label, centers=centers,
                                        sigmas=sigmas, prior=prior))
        return self

    def activations(self, features: np.ndarray) -> np.ndarray:
        """Rule activations, shape ``(n_samples, n_classes)``.

        Product t-norms are computed in the log domain to avoid underflow
        with many features.
        """
        if not self.rules:
            raise RuntimeError("classifier is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        member_fn = (gaussian_membership if self.membership == "exact"
                     else pwl_membership)
        out = np.empty((features.shape[0], len(self.rules)))
        for j, rule in enumerate(self.rules):
            memberships = member_fn(features, rule.centers, rule.sigmas)
            if self.tnorm == "product":
                log_m = np.log(np.maximum(memberships, _EPS_LOG))
                score = log_m.sum(axis=1)
                if self.use_priors:
                    score = score + np.log(max(rule.prior, _EPS_LOG))
            else:
                score = memberships.min(axis=1)
                if self.use_priors:
                    score = score * rule.prior
            out[:, j] = score
        return out

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class label per sample."""
        scores = self.activations(features)
        indices = np.argmax(scores, axis=1)
        labels = np.array(self.classes)
        return labels[indices]
