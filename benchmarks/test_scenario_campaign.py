"""Scenario campaign — the acceptance run of the fault-injection layer.

Not a paper figure: this drives the ISSUE-2 acceptance criterion.  A
20-patient cohort (with clean-AF sentinels) sweeps the standard
4-scenario grid — clean control, motion bursts, 10 % packet loss,
lead-off — end to end.  Shape criteria: the whole campaign derives from
one master seed, completes within the CI budget (120 s), degrades
gracefully under signal faults, and the packet-loss scenario drops
exactly zero clean AF alarms (ARQ + gateway reassembly).
"""

from __future__ import annotations

import time

from conftest import print_table
from repro.scenarios import CampaignConfig, CampaignRunner, default_grid

N_PATIENTS = 20
N_SENTINELS = 2
DURATION_S = 60.0
MASTER_SEED = 2014
TIME_BUDGET_S = 120.0


def run_campaign():
    config = CampaignConfig(n_patients=N_PATIENTS,
                            n_sentinels=N_SENTINELS,
                            duration_s=DURATION_S,
                            master_seed=MASTER_SEED)
    runner = CampaignRunner(default_grid(DURATION_S), config)
    return runner.run()


def test_scenario_campaign(benchmark):
    t0 = time.perf_counter()
    report = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    elapsed = time.perf_counter() - t0

    print_table(
        f"Scenario campaign ({N_PATIENTS} patients x "
        f"{len(report.results)} scenarios, seed {MASTER_SEED})",
        ["scenario", "alarms", "confirmed", "fdrop %", "p50 SNR [dB]",
         "dSNR [dB]", "kB/pt/day", "stale", "dups", "gaps"],
        [
            (res.scenario, res.node_alarms, res.confirmed_alarms,
             100 * res.sentinel_false_drop_rate, res.snr_p50_db,
             res.snr_drop_p50_db,
             res.uplink_bytes_per_patient_day / 1e3,
             res.stale_patients, res.duplicate_packets,
             res.reassembly_gaps)
            for res in report.results
        ],
    )

    # ≥ 4 distinct scenarios over the full 20-patient cohort.
    names = [res.scenario for res in report.results]
    assert len(names) >= 4 and len(set(names)) == len(names)
    assert all(res.n_patients == N_PATIENTS for res in report.results)

    # CI time budget (includes detector training inside run_campaign).
    assert elapsed < TIME_BUDGET_S, (
        f"campaign took {elapsed:.1f} s, budget {TIME_BUDGET_S:.0f} s")

    # The campaign is reproducible from its master seed: the report
    # carries the seed, and its deterministic surface is JSON-stable
    # (the unit suite asserts two runs are byte-identical).
    payload = report.to_dict()
    assert payload["master_seed"] == MASTER_SEED
    assert len(payload["scenarios"]) == len(report.results)

    # Sentinels raised alarms everywhere, and the packet-loss scenario
    # dropped none of them: 0 % false-drop under 10 % uniform loss.
    for res in report.results:
        assert res.sentinel_node_alarms >= 1, res.scenario
    loss = report.result("loss-10pct")
    assert loss.sentinel_false_drop_rate == 0.0
    assert loss.link_stats["offered"] > 0

    # The clean control anchors SNR; the control itself must be healthy.
    clean = report.result("clean")
    assert clean.snr_p50_db > 12.0
    assert clean.sentinel_false_drop_rate == 0.0
    assert clean.queue_dropped == 0
