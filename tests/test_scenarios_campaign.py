"""Tests for the campaign runner and its reproducibility contract."""

import json

import pytest

from repro.scenarios import (
    CampaignConfig,
    CampaignRunner,
    ScenarioSpec,
    battery_drain_scenario,
    clean_scenario,
    governed_grid,
    governor_stress_scenario,
    packet_loss_scenario,
)

SMALL = CampaignConfig(n_patients=4, n_sentinels=2, duration_s=60.0,
                       master_seed=77, gateway_n_iter=40)


@pytest.fixture(scope="module")
def small_report(trained_af_detector):
    runner = CampaignRunner(
        (clean_scenario(), packet_loss_scenario(0.10)),
        SMALL, af_detector=trained_af_detector)
    return runner.run()


class TestCampaignRunner:
    def test_scenario_names_must_be_unique(self):
        with pytest.raises(ValueError, match="unique"):
            CampaignRunner((clean_scenario(), clean_scenario()), SMALL)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="scenario"):
            CampaignRunner((), SMALL)

    def test_cohort_contains_sentinels(self):
        cohort = CampaignRunner((clean_scenario(),), SMALL).cohort()
        assert len(cohort) == SMALL.n_patients
        sentinels = [p for p in cohort
                     if p.patient_id.startswith("sentinel")]
        assert len(sentinels) == SMALL.n_sentinels
        for profile in sentinels:
            assert profile.rhythm == "af"
            assert profile.snr_db is None

    def test_cohort_reproducible(self):
        one = CampaignRunner((clean_scenario(),), SMALL).cohort()
        two = CampaignRunner((clean_scenario(),), SMALL).cohort()
        assert one == two


class TestCampaignReport:
    def test_one_result_per_scenario(self, small_report):
        assert [r.scenario for r in small_report.results] == \
            ["clean", "loss-10pct"]
        assert small_report.result("clean").scenario == "clean"
        with pytest.raises(KeyError):
            small_report.result("nope")

    def test_sentinels_raise_and_survive(self, small_report):
        for result in small_report.results:
            assert result.sentinel_node_alarms >= 1
            assert result.sentinel_false_drop_rate == 0.0

    def test_clean_anchor_for_snr_drop(self, small_report):
        assert small_report.result("clean").snr_drop_p50_db == 0.0

    def test_json_round_trips(self, small_report):
        payload = json.loads(small_report.to_json())
        assert payload["master_seed"] == SMALL.master_seed
        assert len(payload["scenarios"]) == 2
        for scenario in payload["scenarios"]:
            assert scenario["n_patients"] == SMALL.n_patients

    def test_runtime_excluded_from_deterministic_surface(self,
                                                         small_report):
        assert small_report.total_runtime_s > 0
        for result in small_report.results:
            assert "runtime_s" not in result.to_dict()

    def test_describe_mentions_every_scenario(self, small_report):
        text = small_report.describe()
        assert "clean" in text and "loss-10pct" in text

    def test_unit_runtimes_cover_the_cohort(self, small_report):
        cohort_ids = {p.patient_id for p in CampaignRunner(
            (clean_scenario(),), SMALL).cohort()}
        for result in small_report.results:
            assert set(result.unit_runtimes_s) == cohort_ids
            assert all(sec >= 0.0
                       for sec in result.unit_runtimes_s.values())
            assert result.unit_runtimes_s not in \
                result.to_dict().values()

    def test_timings_block_is_opt_in(self, small_report):
        assert "timings" not in json.loads(small_report.to_json())
        payload = json.loads(small_report.to_json(include_timings=True))
        timings = payload["timings"]
        assert set(timings) == {"clean", "loss-10pct"}
        for scenario, block in timings.items():
            units = block["units"]
            assert list(units) == sorted(units)
            assert block["runtime_s"] >= 0.0
            assert set(units) == set(
                small_report.result(scenario).unit_runtimes_s)
        # The deterministic surface is unchanged by the timings block.
        with_block = dict(payload)
        with_block.pop("timings")
        assert with_block == json.loads(small_report.to_json())


class TestDeterminism:
    def test_identical_reports_across_two_runs(self, trained_af_detector):
        # The acceptance contract: one master seed -> byte-identical
        # campaign reports, including under link impairments.
        config = CampaignConfig(n_patients=3, n_sentinels=1,
                                duration_s=60.0, master_seed=11,
                                gateway_n_iter=40)
        grid = (clean_scenario(), packet_loss_scenario(0.15))
        one = CampaignRunner(grid, config,
                             af_detector=trained_af_detector).run()
        two = CampaignRunner(grid, config,
                             af_detector=trained_af_detector).run()
        assert one.to_json() == two.to_json()

    def test_master_seed_changes_report(self, trained_af_detector):
        grid = (packet_loss_scenario(0.15),)
        reports = []
        for seed in (11, 12):
            config = CampaignConfig(n_patients=3, n_sentinels=1,
                                    duration_s=60.0, master_seed=seed,
                                    gateway_n_iter=40)
            reports.append(CampaignRunner(
                grid, config, af_detector=trained_af_detector).run())
        assert reports[0].to_json() != reports[1].to_json()


class TestConfigValidation:
    def test_sentinels_bounded_by_cohort(self):
        with pytest.raises(ValueError, match="sentinel"):
            CampaignConfig(n_patients=2, n_sentinels=3)

    def test_need_one_patient(self):
        with pytest.raises(ValueError, match="patient"):
            CampaignConfig(n_patients=0)

    def test_faulty_scenario_runs(self, trained_af_detector):
        # A scenario with signal faults exercises the injection path.
        from repro.scenarios import FaultEvent

        spec = ScenarioSpec(
            name="wobble",
            faults=(FaultEvent("baseline_wander", 0.0, 60.0,
                               severity=0.6),))
        config = CampaignConfig(n_patients=2, n_sentinels=1,
                                duration_s=60.0, master_seed=21,
                                gateway_n_iter=40)
        report = CampaignRunner((spec,), config,
                                af_detector=trained_af_detector).run()
        result = report.result("wobble")
        assert result.packets_sent > 0
        assert result.n_patients == 2


class TestPatientWorkers:
    """The opt-in (patient, scenario) process-pool sweep."""

    CFG = dict(n_patients=2, n_sentinels=1, duration_s=60.0,
               master_seed=21, gateway_n_iter=40)

    def test_four_workers_byte_identical_to_one(self, trained_af_detector):
        # Worker results are merged by (patient_id, scenario) key in
        # cohort x grid order, never completion order — so the report
        # cannot depend on process scheduling.
        grid = (clean_scenario(), packet_loss_scenario(0.15))
        reports = []
        for workers in (1, 4):
            config = CampaignConfig(patient_workers=workers, **self.CFG)
            reports.append(CampaignRunner(
                grid, config, af_detector=trained_af_detector).run())
        assert reports[0].to_json() == reports[1].to_json()

    def test_clean_scenario_matches_joint_path(self, trained_af_detector):
        # Without link impairments the decomposed sweep computes the
        # exact numbers of the joint single-process path.
        grid = (clean_scenario(),)
        results = []
        for workers in (0, 1):
            config = CampaignConfig(patient_workers=workers, **self.CFG)
            report = CampaignRunner(grid, config,
                                    af_detector=trained_af_detector).run()
            results.append(report.result("clean").to_dict())
        assert results[0] == results[1]

    def test_sentinels_survive_loss_in_decomposed_mode(
            self, trained_af_detector):
        config = CampaignConfig(patient_workers=1, **self.CFG)
        report = CampaignRunner((packet_loss_scenario(0.15),), config,
                                af_detector=trained_af_detector).run()
        result = report.results[0]
        assert result.sentinel_node_alarms >= 1
        assert result.sentinel_false_drop_rate == 0.0
        assert result.link_stats["offered"] > 0

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="patient_workers"):
            CampaignConfig(patient_workers=-1)


class TestGovernedCampaigns:
    """Governed campaigns: battery/acuity fault kinds, reproducibility."""

    CFG = dict(n_patients=3, n_sentinels=1, duration_s=120.0,
               master_seed=31, gateway_n_iter=40,
               excerpt_period_s=30.0, governed=True)

    def test_battery_drain_campaign_byte_reproducible(
            self, trained_af_detector):
        # Acceptance bar: one master seed -> byte-identical report for
        # the battery_drain scenario, with N-worker == 1-worker.
        grid = (battery_drain_scenario(120.0),)
        reports = []
        for workers in (1, 3):
            config = CampaignConfig(patient_workers=workers, **self.CFG)
            reports.append(CampaignRunner(
                grid, config, af_detector=trained_af_detector).run())
        assert reports[0].to_json() == reports[1].to_json()
        result = reports[0].result("battery-drain")
        assert result.governed
        assert result.governor_switches > 0
        # The drain pushes nodes down the ladder into events-only.
        assert result.mode_seconds.get("delineation_only", 0.0) > 0
        assert result.telemetry_packets > 0

    def test_governed_joint_path_matches_reruns(self,
                                                trained_af_detector):
        config = CampaignConfig(**self.CFG)
        grid = governed_grid(120.0)
        one = CampaignRunner(grid, config,
                             af_detector=trained_af_detector).run()
        two = CampaignRunner(grid, config,
                             af_detector=trained_af_detector).run()
        assert one.to_json() == two.to_json()

    def test_governor_stress_forces_mode_upshift(self,
                                                 trained_af_detector):
        config = CampaignConfig(**self.CFG)
        report = CampaignRunner((governor_stress_scenario(120.0),),
                                config,
                                af_detector=trained_af_detector).run()
        result = report.result("governor-stress")
        # The forced-alert episode keeps high-fidelity streaming alive
        # despite the parasitic drain.
        assert result.mode_seconds.get("multi_lead_cs", 0.0) > 0
        assert result.governor_switches > 0

    def test_node_faults_leave_the_waveform_alone(self,
                                                  trained_af_detector):
        # battery_drain must not change what the chain detects: alarms
        # and SNR match the clean control exactly (same seeds).
        config = CampaignConfig(**self.CFG)
        grid = (clean_scenario(), battery_drain_scenario(120.0))
        report = CampaignRunner(grid, config,
                                af_detector=trained_af_detector).run()
        clean = report.result("clean")
        drained = report.result("battery-drain")
        assert drained.node_alarms == clean.node_alarms
        assert drained.sentinel_false_drop_rate == 0.0

    def test_ungoverned_reports_carry_empty_governed_columns(
            self, small_report):
        result = small_report.results[0]
        assert not result.governed
        assert result.mode_seconds == {}
        payload = result.to_dict()
        assert payload["governed"] is False
        assert payload["mean_final_soc"] is None


class TestShardWorkers:
    """The shard-backed sweep: whole patient stripes per process."""

    CFG = dict(n_patients=3, n_sentinels=1, duration_s=60.0,
               master_seed=21, gateway_n_iter=40)

    def test_shard_backed_byte_identical_to_decomposed(
            self, trained_af_detector):
        # Same per-patient link/fault seeds, same merge machinery —
        # the two opt-in sweep modes must agree byte for byte.
        grid = (clean_scenario(), packet_loss_scenario(0.15))
        decomposed = CampaignRunner(
            grid, CampaignConfig(patient_workers=1, **self.CFG),
            af_detector=trained_af_detector).run()
        sharded = CampaignRunner(
            grid, CampaignConfig(shard_workers=2, **self.CFG),
            af_detector=trained_af_detector).run()
        assert sharded.to_json() == decomposed.to_json()

    def test_modes_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            CampaignConfig(patient_workers=1, shard_workers=1)

    def test_negative_shard_workers_rejected(self):
        with pytest.raises(ValueError, match="shard_workers"):
            CampaignConfig(shard_workers=-1)


class TestJournalCheckpoints:
    """Journal-backed resumable campaigns (``--start-from``/``--stop-after``)."""

    CFG = dict(n_patients=3, n_sentinels=1, duration_s=60.0,
               master_seed=77, gateway_n_iter=30)
    GRID = (clean_scenario(), packet_loss_scenario(0.10))

    def test_journal_dir_excludes_worker_sweeps(self, tmp_path):
        with pytest.raises(ValueError, match="mutually exclusive"):
            CampaignConfig(journal_dir=str(tmp_path), patient_workers=2)
        with pytest.raises(ValueError, match="mutually exclusive"):
            CampaignConfig(journal_dir=str(tmp_path), shard_workers=2)
        with pytest.raises(ValueError, match="non-empty"):
            CampaignConfig(journal_dir="")

    def test_checkpoint_names_validated(self, trained_af_detector,
                                        tmp_path):
        runner = CampaignRunner(
            self.GRID,
            CampaignConfig(journal_dir=str(tmp_path), **self.CFG),
            af_detector=trained_af_detector)
        with pytest.raises(ValueError, match="start_from"):
            runner.run(start_from="nope")
        with pytest.raises(ValueError, match="stop_after"):
            runner.run(stop_after="nope")
        with pytest.raises(ValueError, match="precedes"):
            runner.run(start_from=self.GRID[1].name,
                       stop_after=self.GRID[0].name)

    def test_start_from_requires_journal_dir(self, trained_af_detector):
        runner = CampaignRunner(self.GRID,
                                CampaignConfig(**self.CFG),
                                af_detector=trained_af_detector)
        with pytest.raises(ValueError, match="journal_dir"):
            runner.run(start_from=self.GRID[1].name)

    def test_stop_then_resume_is_byte_identical(self,
                                                trained_af_detector,
                                                tmp_path):
        """The resumable-campaign acceptance bar: a run stopped after
        stage one and resumed from stage two — replaying stage one from
        its journal — reports byte-identically to one uninterrupted
        run."""
        config = CampaignConfig(journal_dir=str(tmp_path), **self.CFG)

        def runner():
            return CampaignRunner(self.GRID, config,
                                  af_detector=trained_af_detector)

        full = runner().run()
        staged = runner().run(stop_after=self.GRID[0].name)
        assert [r.scenario for r in staged.results] \
            == [self.GRID[0].name]
        resumed = runner().run(start_from=self.GRID[1].name)
        assert resumed.to_json() == full.to_json()
