"""CS-ENC: compressed-sensing encoding kernel, baseline vs accelerated.

Section IV-B: "the authors of [19] highlight that a minimal hardware
support accompanied by a specific instruction set extension of a RISC core
can achieve more than ten-fold power saving with respect to a baseline
implementation while performing compressed sensing over an ECG signal."

The encoder computes ``y[r] = sum_j x[index[r, j]]`` — for a sparse-binary
sensing matrix stored as ``d`` row-major sample indices per measurement.
Two implementations of the inner accumulation:

* **baseline** — plain RISC: load index, load sample, add, bump pointer,
  compare, branch (6 instructions per non-zero);
* **accelerated** — the ``CSA`` extension folds the indirect load,
  accumulate and pointer post-increment into one instruction, so the
  inner loop needs only the (unrollable) CSA stream.

Memory layout (private bank): samples at 0, the index table at
``INDEX_BASE`` (``m * d`` entries), measurements at ``OUT_BASE``.
"""

from __future__ import annotations

import numpy as np

from ..assembler import Assembler
from ..isa import Instruction

INDEX_BASE = 2048
OUT_BASE = 12288


def build_cs_kernel(m: int, d: int, accelerated: bool,
                    unroll: bool = True) -> list[Instruction]:
    """Build the CS encoding program.

    Args:
        m: Measurements per window.
        d: Ones per column ~ indices per measurement (the index table is
            stored per *measurement row*, ``d_row = nnz / m`` on average;
            here the table is laid out with exactly ``d`` entries per
            measurement for regularity, as [19]'s hardware does).
        accelerated: Use the ``CSA`` ISA extension.
        unroll: Unroll the inner accumulation (the accelerated variant's
            natural form; the baseline keeps its loop, as a plain RISC
            compiler would emit).

    Register use: r1 = measurement index, r2 = table pointer,
    r3 = accumulator, r4/r5 = temporaries, r6 = m, r7 = d,
    r8 = inner counter, r10 = loaded value.
    """
    asm = Assembler()
    asm.ldi(6, m)
    asm.ldi(2, INDEX_BASE)
    asm.ldi(1, 0)
    asm.label("row")
    asm.ldi(3, 0)
    if accelerated and unroll:
        for _ in range(d):
            asm.csa(3, 2)
    elif accelerated:
        asm.ldi(8, 0)
        asm.ldi(7, d)
        asm.label("acc")
        asm.csa(3, 2)
        asm.addi(8, 8, 1)
        asm.blt(8, 7, "acc")
    else:
        asm.ldi(8, 0)
        asm.ldi(7, d)
        asm.label("acc")
        asm.ld(4, 2)          # index
        asm.ld(10, 4)         # sample
        asm.add(3, 3, 10)
        asm.addi(2, 2, 1)
        asm.addi(8, 8, 1)
        asm.blt(8, 7, "acc")
    asm.ldi(5, OUT_BASE)
    asm.add(5, 5, 1)
    asm.st(5, 3)
    asm.addi(1, 1, 1)
    asm.blt(1, 6, "row")
    asm.halt()
    return asm.assemble()


def prepare_memory(window: np.ndarray, row_indices: np.ndarray,
                   ) -> list[np.ndarray]:
    """Private-bank contents: samples + flattened index table.

    Args:
        window: Integer window samples.
        row_indices: Index table of shape ``(m, d)`` (sample positions
            accumulated into each measurement).
    """
    m, d = row_indices.shape
    size = OUT_BASE + m + 1
    bank = np.zeros(size, dtype=np.int64)
    bank[:window.shape[0]] = window
    bank[INDEX_BASE:INDEX_BASE + m * d] = row_indices.ravel()
    return [bank]


def row_table_from_matrix(matrix: np.ndarray, d: int) -> np.ndarray:
    """Per-row index table of a sparse binary matrix, padded to ``d``.

    Rows with fewer than ``d`` ones repeat their first index (adding the
    same sample twice would corrupt the measurement, so rows are padded
    with index 0 assumed to hold a guard zero — callers place the window
    from address 1).  For simplicity the kernels instead require exactly
    uniform rows; this helper validates that.

    Raises:
        ValueError: If any row has a different number of non-zeros.
    """
    counts = (matrix != 0).sum(axis=1)
    if not np.all(counts == d):
        raise ValueError("row table requires a uniform-row sensing matrix")
    return np.vstack([np.flatnonzero(matrix[r]) for r in
                      range(matrix.shape[0])]).astype(np.int64)


def uniform_row_matrix(m: int, n: int, d: int,
                       rng: np.random.Generator) -> np.ndarray:
    """Sparse binary matrix with exactly ``d`` ones per *row*.

    The per-row layout matches [19]'s accelerator datapath (one index
    stream per measurement); column-regular matrices (the encoder default)
    have binomially distributed row weights, so the kernel uses this
    row-regular construction instead — the recovery properties are
    equivalent in practice.
    """
    matrix = np.zeros((m, n))
    for row in range(m):
        matrix[row, rng.choice(n, size=d, replace=False)] = 1.0
    return matrix


def reference_measurements(window: np.ndarray,
                           row_indices: np.ndarray) -> np.ndarray:
    """NumPy reference: y[r] = sum of the indexed samples."""
    return window[row_indices].sum(axis=1).astype(np.int64)
