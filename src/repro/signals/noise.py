"""Noise models for cardiac signals.

Section III-B of the paper lists the noise sources the filtering stage must
remove: environmental interference (mains hum), biological noise (muscular
activity) and the low-frequency baseline wander targeted by the cubic-spline
method of [10].  Section II adds motion artifacts for ambulatory monitoring.
Each generator here synthesizes one of these components with the correct
spectral signature; :func:`add_noise` mixes them into a record at a chosen
signal-to-noise ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal


def baseline_wander(n: int, fs: float, rng: np.random.Generator,
                    amplitude_mv: float = 0.3,
                    max_freq_hz: float = 0.5) -> np.ndarray:
    """Low-frequency baseline drift (respiration + electrode impedance).

    Built as a sum of a few sinusoids with random frequencies below
    ``max_freq_hz`` and random phases, which matches the 0.05-0.5 Hz band
    that baseline-removal filters must cancel without touching the ST
    segment.
    """
    t = np.arange(n) / fs
    out = np.zeros(n)
    n_components = 4
    for _ in range(n_components):
        freq = rng.uniform(0.05, max_freq_hz)
        phase = rng.uniform(0, 2 * np.pi)
        out += rng.uniform(0.3, 1.0) * np.sin(2 * np.pi * freq * t + phase)
    peak = np.max(np.abs(out))
    if peak > 0:
        out *= amplitude_mv / peak
    return out


def powerline(n: int, fs: float, rng: np.random.Generator,
              amplitude_mv: float = 0.05, mains_hz: float = 50.0) -> np.ndarray:
    """Mains interference: a ``mains_hz`` tone with slow amplitude drift."""
    t = np.arange(n) / fs
    drift = 1.0 + 0.3 * np.sin(2 * np.pi * rng.uniform(0.01, 0.1) * t
                               + rng.uniform(0, 2 * np.pi))
    return amplitude_mv * drift * np.sin(2 * np.pi * mains_hz * t
                                         + rng.uniform(0, 2 * np.pi))


def muscle_artifact(n: int, fs: float, rng: np.random.Generator,
                    amplitude_mv: float = 0.05) -> np.ndarray:
    """EMG noise: white noise band-passed to the 20 Hz-min(100, 0.45*fs) band."""
    raw = rng.standard_normal(n)
    high = min(100.0, 0.45 * fs)
    sos = sp_signal.butter(4, [20.0, high], btype="bandpass", fs=fs, output="sos")
    out = sp_signal.sosfiltfilt(sos, raw)
    rms = np.sqrt(np.mean(out ** 2))
    if rms > 0:
        out *= amplitude_mv / (3.0 * rms)  # amplitude ~= 3-sigma envelope
    return out


def electrode_motion(n: int, fs: float, rng: np.random.Generator,
                     amplitude_mv: float = 0.4,
                     events_per_minute: float = 4.0) -> np.ndarray:
    """Electrode-motion artifacts: sparse step/bump transients.

    Each event is a smooth bump (half-cosine) of 0.1-0.5 s, the classic
    shape produced by electrode-skin impedance changes during movement.
    """
    out = np.zeros(n)
    n_events = rng.poisson(events_per_minute * n / fs / 60.0)
    for _ in range(n_events):
        start = rng.integers(0, max(1, n - 1))
        width = int(rng.uniform(0.1, 0.5) * fs)
        stop = min(n, start + width)
        span = stop - start
        if span <= 1:
            continue
        bump = 0.5 * (1 - np.cos(2 * np.pi * np.arange(span) / span))
        out[start:stop] += rng.choice([-1.0, 1.0]) * rng.uniform(0.3, 1.0) * bump
    peak = np.max(np.abs(out))
    if peak > 0:
        out *= amplitude_mv / peak
    return out


def fibrillatory_waves(n: int, fs: float, rng: np.random.Generator,
                       amplitude_mv: float = 0.06,
                       base_freq_hz: float = 6.0) -> np.ndarray:
    """Atrial fibrillatory (f-) waves: 4-9 Hz quasi-sinusoidal activity.

    During AF the P wave is replaced by continuous low-amplitude
    oscillations; the AF detector's P-wave-absence criterion must be
    robust to them.
    """
    t = np.arange(n) / fs
    freq_drift = base_freq_hz + 1.0 * np.sin(2 * np.pi * 0.05 * t
                                             + rng.uniform(0, 2 * np.pi))
    phase = 2 * np.pi * np.cumsum(freq_drift) / fs
    amp_mod = 1.0 + 0.3 * np.sin(2 * np.pi * 0.2 * t + rng.uniform(0, 2 * np.pi))
    return amplitude_mv * amp_mod * np.sin(phase)


#: Registry of noise generators usable with :func:`noise_mixture`.
NOISE_KINDS = {
    "baseline": baseline_wander,
    "powerline": powerline,
    "muscle": muscle_artifact,
    "motion": electrode_motion,
}


@dataclass(frozen=True)
class NoiseSpec:
    """Specification of one noise component for :func:`noise_mixture`.

    Attributes:
        kind: One of the keys of :data:`NOISE_KINDS`.
        weight: Relative power weight within the mixture.
    """

    kind: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in NOISE_KINDS:
            raise ValueError(
                f"unknown noise kind {self.kind!r}; choose from {sorted(NOISE_KINDS)}"
            )
        if self.weight <= 0:
            raise ValueError("noise weight must be positive")


AMBULATORY_MIX = (
    NoiseSpec("baseline", 1.0),
    NoiseSpec("powerline", 0.3),
    NoiseSpec("muscle", 0.5),
    NoiseSpec("motion", 0.7),
)

RESTING_MIX = (
    NoiseSpec("baseline", 1.0),
    NoiseSpec("powerline", 0.4),
    NoiseSpec("muscle", 0.3),
)


def noise_mixture(n: int, fs: float, rng: np.random.Generator,
                  specs: tuple[NoiseSpec, ...] = RESTING_MIX) -> np.ndarray:
    """Generate a weighted mixture of noise components with unit power."""
    total = np.zeros(n)
    for spec in specs:
        component = NOISE_KINDS[spec.kind](n, fs, rng)
        power = np.mean(component ** 2)
        if power > 0:
            component = component / np.sqrt(power)
        total += spec.weight * component
    power = np.mean(total ** 2)
    if power > 0:
        total /= np.sqrt(power)
    return total


def snr_db(clean: np.ndarray, noisy: np.ndarray) -> float:
    """SNR of ``noisy`` against the reference ``clean`` signal, in dB."""
    clean = np.asarray(clean, dtype=float)
    noise = np.asarray(noisy, dtype=float) - clean
    signal_power = np.mean(clean ** 2)
    noise_power = np.mean(noise ** 2)
    if noise_power == 0:
        return np.inf
    return 10.0 * np.log10(signal_power / noise_power)


def add_noise(signal: np.ndarray, fs: float, target_snr_db: float,
              rng: np.random.Generator,
              specs: tuple[NoiseSpec, ...] = RESTING_MIX) -> np.ndarray:
    """Return ``signal`` plus a noise mixture scaled to ``target_snr_db``.

    Args:
        signal: Clean waveform (mV).
        fs: Sampling frequency.
        target_snr_db: Desired signal-to-noise ratio.
        rng: Random generator.
        specs: Mixture composition.
    """
    signal = np.asarray(signal, dtype=float)
    noise = noise_mixture(signal.shape[0], fs, rng, specs)
    signal_power = np.mean(signal ** 2)
    scale = np.sqrt(signal_power / (10.0 ** (target_snr_db / 10.0)))
    return signal + scale * noise
