"""Versioned binary wire codec for uplink packets.

Until now an :class:`~repro.fleet.UplinkPacket` was a Python dataclass
holding numpy arrays — it could travel between objects in one process
but never across a socket, a radio frame, or a process boundary.  This
module gives every packet kind (multi-/single-lead CS excerpt, raw
excerpt, telemetry, alarm) an exact little-endian binary form, so the
fleet runtime can be sharded across workers (:mod:`repro.fleet.sharding`)
and, eventually, across machines.

Round trips are **exact**: measurement vectors and evaluation references
ship as raw numpy buffers (dtype token + ``tobytes()``), floats as IEEE
doubles, so ``decode_packet(encode_packet(p))`` reproduces every field
bit for bit — the gateway cannot tell a decoded packet from the
original (tested end to end via ``SchedulerConfig.wire_loopback``).

Frame layout (version 1, all integers little-endian)::

    offset  size  field
    0       4     magic  b"RPW1"
    4       1     version (0x01)
    5       1     flags   (bit 0: reference attached)
    6       var   kind        u8 length + UTF-8 bytes
    .       var   mode        u8 length + UTF-8 bytes
    .       var   patient_id  u8 length + UTF-8 bytes
    .       8     seq          u64
    .       8     timestamp_s  f64
    .       8     start        i64
    .       8     payload_bits u64
    .       2     n_leads      u16
    .       4     window_n     u32
    .       8     cr_percent   f64
    .       2     quant_bits   u16
    .       8     cs_seed      i64
    .       8     fs           f64
    .       8     mean_hr_bpm  f64
    .       8     soc          f64
    .       2     n_frames     u16
    .       var   n_frames x n_leads encoded windows:
                      u32 m, f64 scale, u32 payload_bits,
                      u32 additions, dtype token (u8 len + bytes),
                      m * itemsize raw measurement buffer
    .       var   reference (flag bit 0 only): u8 ndim, ndim x u32
                  dims, dtype token, raw buffer

Decoding is defensive: a wrong magic, unknown version, truncated
buffer or trailing garbage raises :class:`WireFormatError` instead of
yielding a corrupt packet.
"""

from __future__ import annotations

import struct

import numpy as np

from ..compression.encoder import EncodedWindow
from .node_proxy import UplinkPacket

#: First bytes of every version-1 packet frame.
WIRE_MAGIC = b"RPW1"

#: Current codec version (bump on any layout change).
WIRE_VERSION = 1

#: Flag bit: an evaluation ``reference`` array follows the frames.
_FLAG_REFERENCE = 0x01

_HEAD = struct.Struct("<4sBB")
_BODY = struct.Struct("<QdqQHIdHqdddH")
_WINDOW = struct.Struct("<IdII")


class WireFormatError(ValueError):
    """A buffer does not parse as a valid wire-format frame."""


def _pack_str(value: str) -> bytes:
    """Length-prefixed UTF-8 (u8 length; 255-byte ceiling)."""
    raw = value.encode("utf-8")
    if len(raw) > 255:
        raise WireFormatError(f"string field too long ({len(raw)} bytes)")
    return bytes([len(raw)]) + raw


def _unpack_str(buf: memoryview, offset: int) -> tuple[str, int]:
    """Read one length-prefixed UTF-8 string; return (value, offset)."""
    if offset + 1 > len(buf):
        raise WireFormatError("truncated frame: string length missing")
    length = buf[offset]
    offset += 1
    if offset + length > len(buf):
        raise WireFormatError("truncated frame: string body missing")
    return bytes(buf[offset:offset + length]).decode("utf-8"), \
        offset + length


def _pack_array(array: np.ndarray) -> bytes:
    """Dtype token + shape-free raw buffer of a 1-D array."""
    array = np.ascontiguousarray(array)
    return _pack_str(array.dtype.str) + array.tobytes()


def _unpack_buffer(buf: memoryview, offset: int,
                   count: int) -> tuple[np.ndarray, int]:
    """Read a dtype token plus ``count`` items of raw buffer."""
    dtype_str, offset = _unpack_str(buf, offset)
    try:
        dtype = np.dtype(dtype_str)
    except TypeError as exc:
        raise WireFormatError(f"bad dtype token {dtype_str!r}") from exc
    if dtype.hasobject or dtype.itemsize == 0:
        raise WireFormatError(f"non-buffer dtype token {dtype_str!r}")
    nbytes = count * dtype.itemsize
    if offset + nbytes > len(buf):
        raise WireFormatError("truncated frame: array buffer missing")
    array = np.frombuffer(buf[offset:offset + nbytes],
                          dtype=dtype).copy()
    return array, offset + nbytes


def encode_packet(packet: UplinkPacket) -> bytes:
    """Serialize one packet to its version-1 binary frame."""
    parts = [
        _HEAD.pack(WIRE_MAGIC, WIRE_VERSION,
                   _FLAG_REFERENCE if packet.reference is not None else 0),
        _pack_str(packet.kind),
        _pack_str(packet.mode),
        _pack_str(packet.patient_id),
        _BODY.pack(packet.seq, packet.timestamp_s, packet.start,
                   packet.payload_bits, packet.n_leads, packet.window_n,
                   packet.cr_percent, packet.quant_bits, packet.cs_seed,
                   packet.fs, packet.mean_hr_bpm, packet.soc,
                   packet.n_frames),
    ]
    for frame in packet.frames:
        if len(frame) != packet.n_leads:
            raise WireFormatError(
                f"frame holds {len(frame)} windows, packet declares "
                f"{packet.n_leads} leads")
        for window in frame:
            measurements = np.ascontiguousarray(window.measurements)
            if measurements.ndim != 1:
                raise WireFormatError("measurement vectors must be 1-D")
            parts.append(_WINDOW.pack(measurements.shape[0], window.scale,
                                      window.payload_bits,
                                      window.additions))
            parts.append(_pack_array(measurements))
    if packet.reference is not None:
        reference = np.ascontiguousarray(packet.reference)
        if reference.ndim > 255:
            raise WireFormatError("reference rank too large")
        parts.append(bytes([reference.ndim]))
        parts.append(struct.pack(f"<{reference.ndim}I", *reference.shape))
        parts.append(_pack_array(reference.reshape(-1)))
    return b"".join(parts)


def decode_packet(data: bytes | bytearray | memoryview) -> UplinkPacket:
    """Parse one binary frame back into an :class:`UplinkPacket`.

    Raises:
        WireFormatError: Wrong magic, unsupported version, truncation,
            or trailing bytes after the frame.
    """
    buf = memoryview(data)
    packet, offset = _decode_at(buf, 0)
    if offset != len(buf):
        raise WireFormatError(
            f"{len(buf) - offset} trailing bytes after the frame")
    return packet


def _decode_at(buf: memoryview, offset: int) -> tuple[UplinkPacket, int]:
    """Decode one frame starting at ``offset``; return (packet, end)."""
    if offset + _HEAD.size > len(buf):
        raise WireFormatError("truncated frame: header missing")
    magic, version, flags = _HEAD.unpack_from(buf, offset)
    if magic != WIRE_MAGIC:
        raise WireFormatError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    offset += _HEAD.size
    kind, offset = _unpack_str(buf, offset)
    mode, offset = _unpack_str(buf, offset)
    patient_id, offset = _unpack_str(buf, offset)
    if offset + _BODY.size > len(buf):
        raise WireFormatError("truncated frame: body missing")
    (seq, timestamp_s, start, payload_bits, n_leads, window_n,
     cr_percent, quant_bits, cs_seed, fs, mean_hr_bpm, soc,
     n_frames) = _BODY.unpack_from(buf, offset)
    offset += _BODY.size
    frames = []
    for _ in range(n_frames):
        frame = []
        for _ in range(n_leads):
            if offset + _WINDOW.size > len(buf):
                raise WireFormatError("truncated frame: window missing")
            m, scale, window_bits, additions = _WINDOW.unpack_from(
                buf, offset)
            offset += _WINDOW.size
            measurements, offset = _unpack_buffer(buf, offset, m)
            frame.append(EncodedWindow(measurements=measurements,
                                       scale=scale,
                                       payload_bits=window_bits,
                                       additions=additions))
        frames.append(tuple(frame))
    reference = None
    if flags & _FLAG_REFERENCE:
        if offset + 1 > len(buf):
            raise WireFormatError("truncated frame: reference rank missing")
        ndim = buf[offset]
        offset += 1
        if offset + 4 * ndim > len(buf):
            raise WireFormatError("truncated frame: reference dims missing")
        shape = struct.unpack_from(f"<{ndim}I", buf, offset)
        offset += 4 * ndim
        flat, offset = _unpack_buffer(buf, offset,
                                      int(np.prod(shape, dtype=np.int64)))
        reference = flat.reshape(shape)
    packet = UplinkPacket(
        patient_id=patient_id,
        seq=seq,
        timestamp_s=timestamp_s,
        kind=kind,
        start=start,
        frames=tuple(frames),
        payload_bits=payload_bits,
        n_leads=n_leads,
        window_n=window_n,
        cr_percent=cr_percent,
        quant_bits=quant_bits,
        cs_seed=cs_seed,
        fs=fs,
        mean_hr_bpm=mean_hr_bpm,
        reference=reference,
        mode=mode,
        soc=soc,
    )
    return packet, offset


def encode_packets(packets) -> bytes:
    """Serialize a packet sequence as one length-prefixed stream.

    Layout: u32 packet count, then per packet a u32 frame length
    followed by the :func:`encode_packet` frame — the shard workers'
    result transport, and the natural on-disk capture format.
    """
    frames = [encode_packet(packet) for packet in packets]
    parts = [struct.pack("<I", len(frames))]
    for frame in frames:
        parts.append(struct.pack("<I", len(frame)))
        parts.append(frame)
    return b"".join(parts)


def decode_packets(data: bytes | bytearray | memoryview,
                   ) -> list[UplinkPacket]:
    """Parse a :func:`encode_packets` stream back into packets."""
    buf = memoryview(data)
    if len(buf) < 4:
        raise WireFormatError("truncated stream: count missing")
    (count,) = struct.unpack_from("<I", buf, 0)
    offset = 4
    packets = []
    for _ in range(count):
        if offset + 4 > len(buf):
            raise WireFormatError("truncated stream: frame length missing")
        (length,) = struct.unpack_from("<I", buf, offset)
        offset += 4
        if offset + length > len(buf):
            raise WireFormatError("truncated stream: frame body missing")
        packets.append(decode_packet(buf[offset:offset + length]))
        offset += length
    if offset != len(buf):
        raise WireFormatError(
            f"{len(buf) - offset} trailing bytes after the stream")
    return packets
