"""Beat morphology models.

Each heartbeat is modelled as a sum of Gaussian bumps in the *time* domain,
one per characteristic wave (P, Q, R, S, T), following the parameterization
of the McSharry/ECGSYN dynamical model but expressed directly against the
R-peak instant.  This keeps exact, closed-form ground truth for every
fiducial point: a Gaussian bump of width ``sigma`` centred at ``mu`` is
considered to start at ``mu - GAUSS_SUPPORT * sigma`` and end at
``mu + GAUSS_SUPPORT * sigma`` (amplitude has decayed to < 5 % there).

Beat classes implemented (AAMI-style, matching the paper's references):

* ``N``  – normal sinus beat.
* ``V``  – premature ventricular contraction: wide, high-amplitude QRS,
  absent P wave, discordant (inverted) T wave.
* ``S``  – atrial premature contraction: early, abnormal P wave, normal QRS.
* ``A``  – beat during atrial fibrillation: absent P wave (fibrillatory
  baseline activity is added by the rhythm generator, not the beat model).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .types import (
    ABSENT_WAVE,
    BEAT_AF,
    BEAT_APC,
    BEAT_NORMAL,
    BEAT_PVC,
    BeatAnnotation,
    WaveFiducials,
)

#: Number of standard deviations from a wave's centre to its onset/end.
GAUSS_SUPPORT = 2.5


@dataclass(frozen=True)
class WaveShape:
    """One Gaussian wave component of a beat template.

    Attributes:
        amplitude: Peak amplitude in millivolts (sign carries polarity).
        center_s: Centre relative to the R peak, in seconds, for a
            reference RR interval of 1 s.  Negative values precede the R
            peak (P, Q); positive follow it (S, T).
        width_s: Gaussian standard deviation in seconds.
        rr_scaling: Exponent with which ``center_s`` stretches with the RR
            interval.  1.0 means fully proportional (P wave timing), 0.0
            means fixed (QRS geometry), 0.5 approximates Bazett's law for
            the QT interval.
    """

    amplitude: float
    center_s: float
    width_s: float
    rr_scaling: float = 0.0

    def center_for_rr(self, rr_s: float) -> float:
        """Wave centre (seconds from R peak) for a given RR interval."""
        return self.center_s * rr_s ** self.rr_scaling


@dataclass(frozen=True)
class BeatTemplate:
    """Full morphological description of one beat class.

    The five waves follow the ECGSYN ordering P, Q, R, S, T.  Any wave may
    be disabled by setting its amplitude to exactly 0 (used for the absent
    P wave of ventricular and AF beats).
    """

    label: str
    p: WaveShape
    q: WaveShape
    r: WaveShape
    s: WaveShape
    t: WaveShape

    def waves(self) -> tuple[WaveShape, ...]:
        """The five wave components in P, Q, R, S, T order."""
        return (self.p, self.q, self.r, self.s, self.t)

    def scaled(self, gain: float) -> "BeatTemplate":
        """Return a copy with every wave amplitude multiplied by ``gain``."""
        return BeatTemplate(
            self.label,
            *(replace(w, amplitude=w.amplitude * gain) for w in self.waves()),
        )

    def render(self, t_rel: np.ndarray, rr_s: float) -> np.ndarray:
        """Evaluate the beat waveform on times relative to the R peak.

        Args:
            t_rel: Sample times in seconds, relative to the R-peak instant.
            rr_s: RR interval of this beat in seconds (controls P/T timing).

        Returns:
            Waveform values in millivolts, same shape as ``t_rel``.
        """
        out = np.zeros_like(t_rel, dtype=float)
        for wave in self.waves():
            if wave.amplitude == 0.0:
                continue
            mu = wave.center_for_rr(rr_s)
            out += wave.amplitude * np.exp(
                -0.5 * ((t_rel - mu) / wave.width_s) ** 2
            )
        return out

    def fiducials(self, r_sample: int, rr_s: float, fs: float) -> BeatAnnotation:
        """Exact ground-truth fiducials of a beat rendered at ``r_sample``.

        The QRS complex spans from the onset of the Q wave to the end of
        the S wave; P and T are single Gaussians.
        """

        def bump(wave: WaveShape) -> WaveFiducials:
            if wave.amplitude == 0.0:
                return ABSENT_WAVE
            mu = wave.center_for_rr(rr_s)
            onset = r_sample + int(round((mu - GAUSS_SUPPORT * wave.width_s) * fs))
            peak = r_sample + int(round(mu * fs))
            end = r_sample + int(round((mu + GAUSS_SUPPORT * wave.width_s) * fs))
            return WaveFiducials(onset, peak, end)

        q_on = self.q.center_for_rr(rr_s) - GAUSS_SUPPORT * self.q.width_s
        s_end = self.s.center_for_rr(rr_s) + GAUSS_SUPPORT * self.s.width_s
        qrs = WaveFiducials(
            onset=r_sample + int(round(q_on * fs)),
            peak=r_sample,
            end=r_sample + int(round(s_end * fs)),
        )
        return BeatAnnotation(
            r_peak=r_sample,
            label=self.label,
            p_wave=bump(self.p),
            qrs=qrs,
            t_wave=bump(self.t),
        )


def normal_beat() -> BeatTemplate:
    """Normal sinus beat (amplitudes/widths from the ECGSYN defaults)."""
    return BeatTemplate(
        label=BEAT_NORMAL,
        p=WaveShape(amplitude=0.15, center_s=-0.17, width_s=0.022, rr_scaling=1.0),
        q=WaveShape(amplitude=-0.12, center_s=-0.026, width_s=0.008),
        r=WaveShape(amplitude=1.00, center_s=0.0, width_s=0.010),
        s=WaveShape(amplitude=-0.25, center_s=0.026, width_s=0.008),
        t=WaveShape(amplitude=0.30, center_s=0.32, width_s=0.050, rr_scaling=0.5),
    )


def pvc_beat() -> BeatTemplate:
    """Premature ventricular contraction.

    No P wave; QRS widened by ~2.5x and taller; T wave discordant
    (opposite polarity to the QRS), per standard electrophysiology.
    """
    return BeatTemplate(
        label=BEAT_PVC,
        p=WaveShape(amplitude=0.0, center_s=-0.17, width_s=0.022, rr_scaling=1.0),
        q=WaveShape(amplitude=-0.20, center_s=-0.060, width_s=0.020),
        r=WaveShape(amplitude=1.35, center_s=0.0, width_s=0.028),
        s=WaveShape(amplitude=-0.45, center_s=0.060, width_s=0.020),
        t=WaveShape(amplitude=-0.35, center_s=0.34, width_s=0.060, rr_scaling=0.5),
    )


def apc_beat() -> BeatTemplate:
    """Atrial premature contraction: abnormal (small, early) P, normal QRS."""
    return BeatTemplate(
        label=BEAT_APC,
        p=WaveShape(amplitude=0.08, center_s=-0.13, width_s=0.015, rr_scaling=1.0),
        q=WaveShape(amplitude=-0.12, center_s=-0.026, width_s=0.008),
        r=WaveShape(amplitude=0.95, center_s=0.0, width_s=0.010),
        s=WaveShape(amplitude=-0.25, center_s=0.026, width_s=0.008),
        t=WaveShape(amplitude=0.28, center_s=0.32, width_s=0.050, rr_scaling=0.5),
    )


def af_beat() -> BeatTemplate:
    """Beat during atrial fibrillation: normal QRS, absent P wave."""
    template = normal_beat()
    return BeatTemplate(
        label=BEAT_AF,
        p=replace(template.p, amplitude=0.0),
        q=template.q,
        r=template.r,
        s=template.s,
        t=template.t,
    )


_TEMPLATES = {
    BEAT_NORMAL: normal_beat,
    BEAT_PVC: pvc_beat,
    BEAT_APC: apc_beat,
    BEAT_AF: af_beat,
}


def template_for(label: str) -> BeatTemplate:
    """Look up the beat template for a class label.

    Raises:
        KeyError: If ``label`` is not one of the implemented beat classes.
    """
    try:
        return _TEMPLATES[label]()
    except KeyError:
        raise KeyError(
            f"no beat template for label {label!r}; "
            f"known classes: {sorted(_TEMPLATES)}"
        ) from None
