"""T1 (in-text §V) — delineation sensitivity/PPV above 90 %.

Paper: "the measured sensitivity and specificity of retrieved fiducial
points are above 90 % in all cases, which is at the target level for
medical use", with performance "in line with computing-demanding off-line
variants".  The bench delineates a 6-record corpus with both on-node
algorithms (wavelet [12] and MMD [13]) and prints the per-fiducial table.
"""

from __future__ import annotations

import numpy as np

from conftest import print_table
from repro.delineation import (
    DelineationReport,
    MmdDelineator,
    RPeakDetector,
    WaveletDelineator,
    evaluate_delineation,
)


def _merge_reports(reports: list[DelineationReport]) -> list[tuple]:
    keys = sorted(reports[0].fiducials)
    rows = []
    for key in keys:
        tp = sum(r.fiducials[key].true_positive for r in reports)
        fn = sum(r.fiducials[key].false_negative for r in reports)
        fp = sum(r.fiducials[key].false_positive for r in reports)
        errors = np.concatenate([r.fiducials[key].errors_s
                                 for r in reports])
        se = tp / (tp + fn) if tp + fn else 1.0
        ppv = tp / (tp + fp) if tp + fp else 1.0
        bias = 1e3 * float(np.mean(errors)) if errors.size else 0.0
        rows.append((f"{key[0]}-{key[1]}", se, ppv, bias))
    return rows


def _evaluate(corpus, delineator_cls):
    reports = []
    for record in corpus:
        ecg = record.lead(1)
        peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
        detected = delineator_cls(ecg.fs).delineate(ecg.signal, peaks)
        reports.append(evaluate_delineation(ecg.beats, detected, ecg.fs))
    return reports


def test_t1_wavelet_delineation(benchmark, nsr_corpus):
    reports = benchmark.pedantic(_evaluate,
                                 args=(nsr_corpus, WaveletDelineator),
                                 rounds=1, iterations=1)
    rows = _merge_reports(reports)
    print_table("T1: wavelet delineator, 6-record NSR corpus "
                "(paper: Se/PPV > 90 % for all fiducials)",
                ["fiducial", "Se", "PPV", "bias [ms]"], rows)
    for name, se, ppv, _ in rows:
        assert se >= 0.90, name
        assert ppv >= 0.90, name
    assert np.mean([r.beat_sensitivity for r in reports]) >= 0.99


def test_t1_mmd_delineation(benchmark, nsr_corpus):
    reports = benchmark.pedantic(_evaluate, args=(nsr_corpus, MmdDelineator),
                                 rounds=1, iterations=1)
    rows = _merge_reports(reports)
    print_table("T1: MMD delineator, 6-record NSR corpus",
                ["fiducial", "Se", "PPV", "bias [ms]"], rows)
    for name, se, ppv, _ in rows:
        # MMD P-detection under noise sits slightly below the wavelet
        # variant (documented in EXPERIMENTS.md); all others >= 90 %.
        floor = 0.85 if name.startswith("P-") else 0.90
        assert se >= floor, name
        assert ppv >= floor, name


def test_t1_comparative_agreement(benchmark, nsr_corpus):
    """Ref [11]'s point: both embedded delineators are clinically usable
    and agree closely on the same records."""

    def both():
        record = nsr_corpus.records[0]
        ecg = record.lead(1)
        peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
        wavelet = WaveletDelineator(ecg.fs).delineate(ecg.signal, peaks)
        mmd = MmdDelineator(ecg.fs).delineate(ecg.signal, peaks)
        return ecg, wavelet, mmd

    ecg, wavelet, mmd = benchmark.pedantic(both, rounds=1, iterations=1)
    diffs = []
    for a, b in zip(wavelet, mmd):
        if a.t_wave.present and b.t_wave.present:
            diffs.append(abs(a.t_wave.peak - b.t_wave.peak) / ecg.fs)
    print_table("T1: cross-method T-peak agreement",
                ["metric", "value"],
                [("mean |dT-peak| [ms]", 1e3 * float(np.mean(diffs)))])
    assert np.mean(diffs) < 0.03
