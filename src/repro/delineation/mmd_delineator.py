"""Morphological-transform delineation (Sun, Chan & Krishnan 2005, ref [13]).

The multiscale morphological derivative (MMD) of a signal ``f`` with a flat
structuring element of length ``s`` is

    MMD_s f = ((f (+) B_s) + f (-) B_s) - 2 f) / s

(dilation plus erosion minus twice the signal).  As the paper's §III-C
describes, *minima* of the transform mark wave peaks, while *maxima* (or
sudden slope changes) delimit wave starts and ends.  Both dilation and
erosion reduce to sliding max/min (flat structuring element), so the whole
delineator runs on comparisons only — the §IV-A optimization.

Scales are per wave type (the "multiscale" in MMD): a short element for the
narrow QRS and wider ones for P and T.  Boundaries are obtained by scanning
outward from the flanking positive lobes of the transform until it decays
below a fraction of the lobe amplitude, mirroring the threshold rule used
by the wavelet delineator so the two methods are directly comparable (the
comparative evaluation of ref [11]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.windows import dilation, erosion
from ..signals.types import ABSENT_WAVE, BeatAnnotation, EcgRecord, WaveFiducials
from .rpeak import RPeakDetector
from .wavelet_delineator import _clamp_p_end


def mmd_transform(x: np.ndarray, half_width: int) -> np.ndarray:
    """Multiscale morphological derivative at one scale.

    Args:
        x: Input waveform.
        half_width: Half-length ``k`` of the flat structuring element
            (full length ``2k + 1``).

    Returns:
        The transform ``(dilation + erosion - 2x) / (2k + 1)``.
    """
    if half_width < 1:
        raise ValueError("structuring-element half-width must be >= 1")
    width = 2 * half_width + 1
    x = np.asarray(x, dtype=float)
    return (dilation(x, width) + erosion(x, width) - 2.0 * x) / width


@dataclass(frozen=True)
class MmdDelineatorConfig:
    """Tuning constants of the MMD delineator.

    Attributes:
        qrs_scale_s: Structuring-element half-width for the QRS scale.
        p_scale_s: Half-width for the P-wave scale.
        t_scale_s: Half-width for the T-wave scale.
        xi_bound: Decay fraction ending the outward boundary scans.
        p_presence_factor: The MMD minimum depth in the P window must
            exceed this multiple of the local background (25th percentile
            of the modulus inside the window) for the P wave to count as
            present.  The local statistic rises with AF fibrillatory
            activity, rejecting absent P waves.
        t_presence_factor: Same criterion for the T wave (T waves are
            broad, so their local contrast is inherently lower).
        qrs_half_window_s: QRS analysis half-window.
        p_window_s: (earliest, latest) P search bounds before the R peak.
        t_window_s: (earliest, latest) T search bounds after the R peak.
        refine_half_window_s: Raw-signal peak refinement half-window.
    """

    qrs_scale_s: float = 0.020
    p_scale_s: float = 0.028
    t_scale_s: float = 0.040
    xi_bound: float = 0.15
    p_presence_factor: float = 5.0
    t_presence_factor: float = 5.0
    qrs_half_window_s: float = 0.14
    p_window_s: tuple[float, float] = (0.32, 0.05)
    t_window_s: tuple[float, float] = (0.08, 0.62)
    refine_half_window_s: float = 0.04


class MmdDelineator:
    """Multiscale-morphological-derivative delineator.

    Args:
        fs: Sampling frequency in Hz.
        config: Tuning constants.
    """

    def __init__(self, fs: float,
                 config: MmdDelineatorConfig | None = None) -> None:
        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        self.fs = fs
        self.config = config or MmdDelineatorConfig()

    def _half_width(self, seconds: float) -> int:
        return max(1, int(round(seconds * self.fs)))

    def delineate(self, x: np.ndarray,
                  r_peaks: np.ndarray | None = None) -> list[BeatAnnotation]:
        """Delineate every beat of a single-lead waveform.

        Args:
            x: Input waveform (conditioned input recommended; the MMD is
                insensitive to slow baseline wander because dilation and
                erosion track it together).
            r_peaks: Known R peaks; detected if omitted.

        Returns:
            One :class:`BeatAnnotation` per beat.
        """
        x = np.asarray(x, dtype=float)
        if r_peaks is None:
            r_peaks = RPeakDetector(self.fs).detect(x)
        r_peaks = np.asarray(r_peaks, dtype=int)
        if r_peaks.shape[0] == 0:
            return []
        cfg = self.config
        m_qrs = mmd_transform(x, self._half_width(cfg.qrs_scale_s))
        m_p = mmd_transform(x, self._half_width(cfg.p_scale_s))
        m_t = mmd_transform(x, self._half_width(cfg.t_scale_s))
        annotations = []
        for idx, r in enumerate(r_peaks):
            rr_prev = (r - r_peaks[idx - 1]) / self.fs if idx > 0 else 0.8
            rr_next = ((r_peaks[idx + 1] - r) / self.fs
                       if idx + 1 < r_peaks.shape[0] else 0.8)
            qrs = self._delineate_qrs(m_qrs, int(r))
            t_wave = self._delineate_wave(
                x, m_t, cfg.t_presence_factor,
                self._half_width(cfg.t_scale_s),
                lo=int(r + cfg.t_window_s[0] * self.fs),
                hi=int(r + min(cfg.t_window_s[1],
                               max(0.25, 0.72 * rr_next)) * self.fs),
            )
            p_earliest = cfg.p_window_s[0] * min(1.0, rr_prev / 0.8)
            p_wave = self._delineate_wave(
                x, m_p, cfg.p_presence_factor,
                self._half_width(cfg.p_scale_s),
                lo=int(r - max(p_earliest, 0.14) * self.fs),
                hi=int(r - cfg.p_window_s[1] * self.fs),
            )
            p_wave = _clamp_p_end(p_wave, qrs)
            annotations.append(BeatAnnotation(
                r_peak=int(r), p_wave=p_wave, qrs=qrs, t_wave=t_wave))
        return annotations

    def delineate_record(self, record: EcgRecord,
                         use_annotated_r_peaks: bool = False,
                         ) -> list[BeatAnnotation]:
        """Delineate a record (optionally seeding with annotated R peaks)."""
        r_peaks = record.r_peaks if use_annotated_r_peaks else None
        return self.delineate(record.signal, r_peaks)

    def _delineate_qrs(self, m: np.ndarray, r: int) -> WaveFiducials:
        """QRS onset/end: flanking MMD maxima, then outward decay scans."""
        half = int(self.config.qrs_half_window_s * self.fs)
        guard = max(2, int(0.008 * self.fs))
        n = m.shape[0]
        left_lo = max(0, r - half)
        right_hi = min(n, r + half + 1)
        if r - guard <= left_lo or right_hi <= r + guard:
            return ABSENT_WAVE
        left = m[left_lo:r - guard]
        right = m[r + guard:right_hi]
        if left.shape[0] == 0 or right.shape[0] == 0:
            return ABSENT_WAVE
        onset_anchor = left_lo + int(np.argmax(left))
        end_anchor = r + guard + int(np.argmax(right))
        onset = self._decay_scan(m, onset_anchor, step=-1,
                                 limit=max(0, onset_anchor - half))
        end = self._decay_scan(m, end_anchor, step=+1,
                               limit=min(n - 1, end_anchor + half))
        return WaveFiducials(onset=onset, peak=r, end=end)

    def _delineate_wave(self, x: np.ndarray, m: np.ndarray,
                        presence_factor: float, half_width: int, lo: int,
                        hi: int) -> WaveFiducials:
        """Locate a monophasic wave: MMD minimum flanked by maxima.

        The flanking anchors are restricted to within ``3 * half_width``
        of the minimum: the transform lobes of a wave cannot be farther
        than the structuring element plus the wave support, and an
        unrestricted ``argmax`` latches onto QRS residue at the window
        edges.
        """
        lo = max(0, lo)
        hi = min(m.shape[0], hi)
        if hi - lo < 5:
            return ABSENT_WAVE
        segment = m[lo:hi]
        min_idx = int(np.argmin(segment))
        depth = -float(segment[min_idx])
        background = float(np.percentile(np.abs(segment), 25))
        if depth < presence_factor * max(background, 1e-4):
            return ABSENT_WAVE
        center = lo + min_idx
        peak = self._refine_peak(x, center)
        span = 3 * half_width
        left = segment[max(0, min_idx - span):min_idx]
        right = segment[min_idx + 1:min_idx + 1 + span]
        if left.shape[0] == 0 or right.shape[0] == 0:
            return ABSENT_WAVE
        onset_anchor = lo + max(0, min_idx - span) + int(np.argmax(left))
        end_anchor = lo + min_idx + 1 + int(np.argmax(right))
        onset = self._decay_scan(m, onset_anchor, step=-1,
                                 limit=max(0, onset_anchor - 2 * span))
        end = self._decay_scan(m, end_anchor, step=+1,
                               limit=min(m.shape[0] - 1, end_anchor + 2 * span))
        return WaveFiducials(onset=onset, peak=peak, end=end)

    def _decay_scan(self, m: np.ndarray, anchor: int, step: int,
                    limit: int) -> int:
        """Walk from a positive lobe until it decays below xi * lobe."""
        threshold = self.config.xi_bound * max(m[anchor], 0.0)
        i = anchor
        while 0 <= i < m.shape[0] and i != limit and m[i] > threshold:
            i += step
        return int(np.clip(i, 0, m.shape[0] - 1))

    def _refine_peak(self, x: np.ndarray, around: int) -> int:
        """Snap a peak mark to the local waveform extremum (signed).

        The wave polarity is read off the sample at the MMD minimum
        relative to the window median; the search then looks for the
        signed extremum, avoiding the edge ties an absolute-value search
        suffers on symmetric bumps.
        """
        half = int(self.config.refine_half_window_s * self.fs)
        lo = max(0, around - half)
        hi = min(x.shape[0], around + half + 1)
        window = x[lo:hi]
        if window.shape[0] == 0:
            return around
        upward = x[around] >= float(np.median(window))
        return lo + int(np.argmax(window) if upward else np.argmin(window))
