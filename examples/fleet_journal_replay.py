"""Journal demo: record a fleet run, crash it, recover, replay it.

Runs a cohort through the in-process scheduler with a durable gateway
journal attached (`repro.fleet.journal`), then walks the full
durability story: tear the log mid-record the way a power cut would,
reopen it (recovery truncates the torn tail — a crash loses at most
one partial record), and stream the journal back through fresh
gateway cores.  The replayed `FleetSummary` is proven
**byte-identical** to the live run's, at a fraction of the live wall
clock.

Run:  python examples/fleet_journal_replay.py [--patients 4] [--dir D]
"""

from __future__ import annotations

import argparse
import tempfile
import time

from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    Gateway,
    GatewayConfig,
    JournalConfig,
    JournalReplayer,
    JournalWriter,
    NodeProxyConfig,
    SchedulerConfig,
    journal_meta,
    make_cohort,
)
from repro.fleet.journal import _REC_HEAD


def main() -> None:
    """Record, tear, recover and replay one journaled fleet run."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=4,
                        help="cohort size")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds per patient")
    parser.add_argument("--dir", default=None,
                        help="journal directory (default: a temp dir)")
    args = parser.parse_args()

    journal_dir = args.dir or tempfile.mkdtemp(prefix="repro-journal-")
    cohort = make_cohort(CohortConfig(n_patients=args.patients, seed=7))
    config = SchedulerConfig(duration_s=args.duration)
    node_config = NodeProxyConfig(stream_telemetry=True)
    gateway_config = GatewayConfig(n_iter=40)
    journal_config = JournalConfig(dir=journal_dir, name="demo")

    print(f"recording {len(cohort)} patients to {journal_dir} ...")
    t0 = time.perf_counter()
    with JournalWriter(journal_config,
                       meta=journal_meta(args.duration, config.fs,
                                         gateway_config),
                       resume=False) as writer:
        live = FleetScheduler(
            cohort, config, node_config=node_config,
            gateway=Gateway(gateway_config), journal=writer).run()
    wall_live = time.perf_counter() - t0
    stats = writer.stats()
    print(f"journal: {stats['records']} records / {stats['bytes']} B "
          f"across {len(journal_config.segment_paths())} segment(s)")

    # A power cut mid-append leaves a torn tail: fake one by appending
    # half a record, then let recovery truncate it.
    tail = journal_config.segment_paths()[-1]
    with tail.open("ab") as f:
        f.write(_REC_HEAD.pack(512, 0) + b"\x00" * 5)
    print("tore the log mid-record (simulated power cut) ...")
    recovered = JournalWriter(journal_config)
    recovered.close()
    print(f"recovered: truncated {recovered.n_truncated_bytes} torn "
          "bytes, journal intact")

    print("replaying the journal through fresh gateway cores ...")
    replay = JournalReplayer(journal_config).run()
    identical = replay.summary.to_json() == live.summary.to_json()

    print("\n" + replay.summary.describe())
    print(f"\nlive wall: {wall_live:.2f} s   "
          f"replay wall: {replay.timings_s['total']:.2f} s   "
          f"(speedup {wall_live / replay.timings_s['total']:.1f}x)")
    print(f"replayed {replay.n_packets} packets / "
          f"{replay.n_messages} control records")
    print(f"replay byte-identical: {identical}")
    if not identical:
        raise SystemExit("journal replay determinism violated!")


if __name__ == "__main__":
    main()
