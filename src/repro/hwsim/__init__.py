"""Instruction-level simulator of the multi-core WBSN platform (§IV-B)."""

from .assembler import Assembler
from .energy import DEFAULT_VF_POINTS, EnergyModel, PowerReport, power_report
from .fig7 import (
    APP_NAMES,
    AppComparison,
    compare_all,
    run_cs_accelerator,
    run_mf3l,
    run_mmd3l,
    run_rpclass,
)
from .isa import BRANCH_OPS, Instruction, MEMORY_OPS, N_REGISTERS, Op
from .tools import ProgramStats, analyze, disassemble
from .platform import (
    EventCounters,
    Platform,
    RunResult,
    SHARED_BASE,
)

__all__ = [
    "APP_NAMES",
    "AppComparison",
    "Assembler",
    "BRANCH_OPS",
    "DEFAULT_VF_POINTS",
    "EnergyModel",
    "EventCounters",
    "Instruction",
    "MEMORY_OPS",
    "N_REGISTERS",
    "Op",
    "Platform",
    "ProgramStats",
    "PowerReport",
    "RunResult",
    "SHARED_BASE",
    "analyze",
    "compare_all",
    "disassemble",
    "power_report",
    "run_cs_accelerator",
    "run_mf3l",
    "run_mmd3l",
    "run_rpclass",
]
