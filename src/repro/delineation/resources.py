"""Embedded-resource estimation for the delineators (exp T2).

Section V of the paper quantifies the wavelet delineator's footprint on the
node: "7 % of the duty cycle and 7.2 kB of memory" at performance in line
with off-line variants.  This module derives duty cycle and memory from
first principles — per-sample operation counts of the streaming algorithm
multiplied by an MCU cost model — so the estimate is transparent and the
T2 benchmark can reproduce the figure's order of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mmd_delineator import MmdDelineatorConfig
from .wavelet_delineator import WaveletDelineatorConfig


@dataclass(frozen=True)
class McuProfile:
    """Cost model of the ultra-low-power MCU class the paper targets.

    Attributes:
        clock_hz: Core clock (the few-MHz regime of §IV-A; 1 MHz active
            clock is typical for MSP430-class parts doing always-on DSP).
        cycles_per_mac: Multiply-accumulate cost (HW multiplier assumed).
        cycles_per_alu: Add/compare/shift cost.
        cycles_per_mem: Load/store cost.
        bytes_per_sample: Sample storage width (16-bit integer).
    """

    clock_hz: float = 1.0e6
    cycles_per_mac: int = 4
    cycles_per_alu: int = 1
    cycles_per_mem: int = 2
    bytes_per_sample: int = 2


@dataclass(frozen=True)
class ResourceEstimate:
    """Outcome of a resource analysis.

    Attributes:
        cycles_per_sample: Average MCU cycles consumed per input sample.
        duty_cycle: Fraction of MCU time busy at the given sampling rate.
        memory_bytes: Data-memory footprint (buffers + state).
        breakdown: Per-component memory itemization.
    """

    cycles_per_sample: float
    duty_cycle: float
    memory_bytes: int
    breakdown: dict[str, int]

    @property
    def memory_kb(self) -> float:
        """Memory footprint in kilobytes."""
        return self.memory_bytes / 1024.0


def wavelet_delineator_resources(fs: float = 250.0,
                                 config: WaveletDelineatorConfig | None = None,
                                 mcu: McuProfile | None = None,
                                 search_window_s: float = 1.6,
                                 beats_per_second: float = 1.2,
                                 ) -> ResourceEstimate:
    """Resource estimate of the streaming wavelet delineator.

    The streaming implementation keeps, per scale, the à-trous filter
    delay lines plus a circular buffer of recent transform samples long
    enough to cover the P/T search windows; per sample it computes one
    4-tap lowpass and one 2-tap highpass MAC pass per scale; per beat it
    scans the search windows for maxima and boundaries.

    Args:
        fs: Sampling frequency.
        config: Delineator configuration (defaults used if omitted).
        mcu: MCU cost model.
        search_window_s: History needed for delineation look-back.
        beats_per_second: Average heart rate for amortized per-beat work.
    """
    config = config or WaveletDelineatorConfig()
    mcu = mcu or McuProfile()
    levels = config.levels

    # Per-sample filtering: each level runs the 4-tap h and 2-tap g pass.
    macs = levels * (4 + 2)
    mem_ops = levels * (4 + 2) * 2  # operand fetch + result store
    cycles_filter = (macs * mcu.cycles_per_mac + mem_ops * mcu.cycles_per_mem)
    # QRS detector feeding the delineator: bandpass + derivative + MWI,
    # roughly 10 MAC-class ops per sample.
    cycles_detector = 10 * mcu.cycles_per_mac + 12 * mcu.cycles_per_mem
    # Per-beat search: three windows scanned twice (maxima + boundaries).
    window_samples = search_window_s * fs
    per_beat_ops = 3 * 2 * window_samples
    cycles_search = per_beat_ops * (mcu.cycles_per_alu + mcu.cycles_per_mem)
    cycles_per_sample = (cycles_filter + cycles_detector
                         + cycles_search * beats_per_second / fs)

    history = int(search_window_s * fs)
    # The streaming delineator keeps every scale's recent transform (the
    # QRS, P and T rules read different scales) over a look-back long
    # enough for one slow beat plus its T wave.
    breakdown = {
        "raw_circular_buffer": history * mcu.bytes_per_sample,
        "scale_buffers": levels * history * mcu.bytes_per_sample,
        "filter_delay_lines": sum(3 * 2 ** k + 1 for k in range(levels))
        * mcu.bytes_per_sample,
        "qrs_detector_state": 96,
        "beat_fifo": 32 * 12,
        "delineation_state": 256,
        "stack_and_misc": 1024,
    }
    memory = sum(breakdown.values())
    duty = cycles_per_sample * fs / mcu.clock_hz
    return ResourceEstimate(cycles_per_sample=cycles_per_sample,
                            duty_cycle=duty, memory_bytes=memory,
                            breakdown=breakdown)


def mmd_delineator_resources(fs: float = 250.0,
                             config: MmdDelineatorConfig | None = None,
                             mcu: McuProfile | None = None,
                             search_window_s: float = 1.6,
                             beats_per_second: float = 1.2,
                             ) -> ResourceEstimate:
    """Resource estimate of the streaming MMD delineator.

    Erosion/dilation with the monotonic-deque optimization cost an
    amortized ~2 comparisons + 2 memory moves per sample per operator;
    three scales run two operators each.
    """
    config = config or MmdDelineatorConfig()
    mcu = mcu or McuProfile()
    scales = 3  # QRS, P, T structuring elements
    operators = 2 * scales  # dilation + erosion per scale
    cycles_morph = operators * (2 * mcu.cycles_per_alu + 2 * mcu.cycles_per_mem)
    # Combine pass: (dil + ero - 2f)/s per scale; division by a constant
    # SE length is a multiply by reciprocal.
    cycles_combine = scales * (2 * mcu.cycles_per_alu + mcu.cycles_per_mac
                               + 2 * mcu.cycles_per_mem)
    cycles_detector = 10 * mcu.cycles_per_mac + 12 * mcu.cycles_per_mem
    window_samples = search_window_s * fs
    per_beat_ops = 3 * 2 * window_samples
    cycles_search = per_beat_ops * (mcu.cycles_per_alu + mcu.cycles_per_mem)
    cycles_per_sample = (cycles_morph + cycles_combine + cycles_detector
                         + cycles_search * beats_per_second / fs)

    history = int(search_window_s * fs)
    deque_entries = sum(
        2 * max(1, int(round(s * fs)) * 2 + 1)
        for s in (config.qrs_scale_s, config.p_scale_s, config.t_scale_s)
    )
    breakdown = {
        "raw_circular_buffer": history * mcu.bytes_per_sample,
        "scale_buffers": 3 * history * mcu.bytes_per_sample,
        "deque_storage": deque_entries * (mcu.bytes_per_sample + 2),
        "qrs_detector_state": 96,
        "beat_fifo": 32 * 12,
        "delineation_state": 256,
        "stack_and_misc": 1024,
    }
    memory = sum(breakdown.values())
    duty = cycles_per_sample * fs / mcu.clock_hz
    return ResourceEstimate(cycles_per_sample=cycles_per_sample,
                            duty_cycle=duty, memory_bytes=memory,
                            breakdown=breakdown)
