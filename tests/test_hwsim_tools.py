"""Tests for the hwsim disassembler and static analyzer."""

import pytest

from repro.hwsim import Assembler, analyze, disassemble
from repro.hwsim.kernels import mf3l, mmd3l, rpclass


def _sample_program():
    asm = Assembler()
    asm.ldi(1, 0)
    asm.ldi(2, 10)
    asm.label("loop")
    asm.ld(3, 1, 100)
    asm.mul(3, 3, 3)
    asm.st(1, 3, 200)
    asm.addi(1, 1, 1)
    asm.blt(1, 2, "loop")
    asm.bar()
    asm.halt()
    return asm.assemble()


class TestDisassembler:
    def test_every_instruction_listed(self):
        program = _sample_program()
        listing = disassemble(program)
        assert len(listing.splitlines()) == len(program)

    def test_mnemonics_present(self):
        listing = disassemble(_sample_program())
        for mnemonic in ("LDI", "LD", "MUL", "ST", "ADDI", "BLT", "BAR",
                         "HALT"):
            assert mnemonic in listing

    def test_branch_targets_marked(self):
        listing = disassemble(_sample_program())
        # The loop head (address 2) is a branch target.
        assert any(line.startswith("->    2:")
                   for line in listing.splitlines())

    def test_kernels_disassemble(self):
        program = mf3l.build_mf_kernel(64, 5, 1)
        listing = disassemble(program)
        assert "MIN" in listing and "MAX" in listing


class TestAnalyzer:
    def test_sample_counts(self):
        stats = analyze(_sample_program())
        assert stats.size == 9
        assert stats.memory == 2
        assert stats.mul == 1
        assert stats.branches == 1
        assert stats.barriers == 1
        assert stats.data_dependent_branches == 1
        assert stats.alu == 4

    def test_memory_fraction(self):
        stats = analyze(_sample_program())
        assert stats.memory_fraction == pytest.approx(2 / 9)

    def test_mf_kernel_is_branch_light(self):
        stats = analyze(mf3l.build_mf_kernel(256, 12, 1))
        # The §IV-B SIMD argument: the filtering kernel's control flow is
        # counter loops only, a small fraction of the program.
        assert stats.branches < 0.25 * stats.size
        assert stats.barriers == 0

    def test_mmd_kernel_has_barrier(self):
        stats = analyze(mmd3l.build_mmd_kernel(256, (5, 10), 1, 3))
        assert stats.barriers == 1

    def test_rpclass_heaviest_in_multiplies(self):
        mf_stats = analyze(mf3l.build_mf_kernel(256, 12, 1))
        rp_stats = analyze(rpclass.build_rpclass_kernel(175, 12, 5, 3))
        assert rp_stats.mul > mf_stats.mul

    def test_empty_program(self):
        stats = analyze([])
        assert stats.size == 0
        assert stats.memory_fraction == 0.0
