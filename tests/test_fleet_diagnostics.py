"""Tests for `Gateway.diagnostics()` and `TriageBoard.link_health()`."""

from __future__ import annotations

import numpy as np

from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    Gateway,
    GatewayConfig,
    NodeProxyConfig,
    PerPatientLink,
    SchedulerConfig,
    make_cohort,
)
from repro.fleet.triage import STATE_OK, TriageBoard
from repro.scenarios import LinkSpec, derive_seed
from repro.scenarios.channel import ImpairedLink

COHORT = make_cohort(CohortConfig(n_patients=3, seed=7))
CONFIG = SchedulerConfig(duration_s=60.0, fs=250.0)
NODE = NodeProxyConfig(stream_telemetry=False)


def run_fleet(link=None):
    # A short excerpt period keeps enough packets in flight for the
    # impaired link to exercise the reassembly counters.
    node = (NODE if link is None
            else NodeProxyConfig(stream_telemetry=False,
                                 excerpt_period_s=6.0))
    scheduler = FleetScheduler(COHORT, CONFIG, node_config=node,
                               link=link)
    fleet = scheduler.run()
    return scheduler, fleet


def impaired_link():
    spec = LinkSpec(loss_rate=0.15, duplicate_rate=0.1,
                    reorder_rate=0.2, jitter_s=2.0,
                    reorder_delay_s=65.0)
    return PerPatientLink(
        lambda pid: ImpairedLink(spec, seed=derive_seed(99, "link", pid)))


class TestDiagnostics:
    def test_channels_sorted_with_expected_keys(self):
        scheduler, _ = run_fleet()
        diag = scheduler.gateway.diagnostics()
        assert list(diag["channels"]) == sorted(diag["channels"])
        assert set(diag["channels"]) == {p.patient_id for p in COHORT}
        entry = next(iter(diag["channels"].values()))
        for key in ("n_excerpts", "n_alarms", "n_confirmed",
                    "n_telemetry", "payload_bits", "n_duplicates",
                    "n_out_of_order", "n_gaps", "n_late_recovered",
                    "pending_reassembly", "stalled_ticks",
                    "last_timestamp_s", "mean_snr_db", "last_mode",
                    "last_soc"):
            assert key in entry

    def test_totals_sum_channels(self):
        scheduler, _ = run_fleet()
        diag = scheduler.gateway.diagnostics()
        for key, total in diag["totals"].items():
            assert total == sum(ch[key]
                                for ch in diag["channels"].values())

    def test_totals_match_summary_surface(self):
        # fleet_summary() now reads these totals; cross-check against
        # the numbers the summary reports.
        scheduler, fleet = run_fleet()
        totals = scheduler.gateway.diagnostics()["totals"]
        assert totals["n_confirmed"] == fleet.summary.confirmed_alarms
        assert totals["n_duplicates"] == fleet.summary.duplicate_packets
        assert totals["n_gaps"] == fleet.summary.reassembly_gaps

    def test_queue_section(self):
        gateway = Gateway(GatewayConfig(queue_capacity=17))
        diag = gateway.diagnostics()
        assert diag["queue"] == {"pending": 0, "capacity": 17,
                                 "dropped": 0}

    def test_impaired_link_populates_reassembly_counters(self):
        scheduler, _ = run_fleet(link=impaired_link())
        totals = scheduler.gateway.diagnostics()["totals"]
        assert totals["n_duplicates"] + totals["n_out_of_order"] \
            + totals["n_gaps"] + totals["n_late_recovered"] > 0


class TestLinkHealth:
    def test_rows_join_board_and_gateway_views(self):
        scheduler, fleet = run_fleet(link=impaired_link())
        diag = scheduler.gateway.diagnostics()
        health = scheduler.board.link_health(diag)
        assert list(health) == sorted(health)
        assert set(health) >= {p.patient_id for p in COHORT}
        for pid, row in health.items():
            ch = diag["channels"].get(pid, {})
            assert row["n_gaps"] == ch.get("n_gaps", 0)
            assert row["n_duplicates"] == ch.get("n_duplicates", 0)
            assert row["state"] in ("ok", "watch", "alert")
            assert isinstance(row["stale"], (bool, np.bool_))

    def test_unregistered_channel_reports_stale(self):
        board = TriageBoard()
        board.register(["known"])
        health = board.link_health(
            {"channels": {"ghost": {"n_gaps": 2}}})
        assert set(health) == {"known", "ghost"}
        assert health["ghost"]["stale"] is True
        assert health["ghost"]["state"] == STATE_OK
        assert health["ghost"]["n_gaps"] == 2

    def test_empty_diagnostics_still_reports_board(self):
        board = TriageBoard()
        board.register(["p0"])
        health = board.link_health({})
        assert list(health) == ["p0"]
        assert health["p0"]["n_gaps"] == 0
