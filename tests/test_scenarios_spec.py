"""Tests for the scenario DSL: specs, validation, seed derivation."""

import pytest

from repro.scenarios import (
    FAULT_KINDS,
    FaultEvent,
    LinkSpec,
    ScenarioSpec,
    clean_scenario,
    default_grid,
    derive_seed,
    lead_off_scenario,
    motion_burst_scenario,
    packet_loss_scenario,
    stress_scenario,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(2014, "a", "b") == derive_seed(2014, "a", "b")

    def test_sensitive_to_every_component(self):
        base = derive_seed(2014, "scenario", "p0001")
        assert derive_seed(2015, "scenario", "p0001") != base
        assert derive_seed(2014, "other", "p0001") != base
        assert derive_seed(2014, "scenario", "p0002") != base

    def test_path_components_not_concatenated(self):
        # ("ab", "c") and ("a", "bc") must derive different streams.
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_in_numpy_seed_range(self):
        for i in range(50):
            seed = derive_seed(7, "x", i)
            assert 0 <= seed < 2 ** 31


class TestFaultEvent:
    def test_valid_kinds(self):
        for kind in FAULT_KINDS:
            event = FaultEvent(kind, start_s=1.0, duration_s=2.0)
            assert event.stop_s == pytest.approx(3.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("earthquake", start_s=0.0, duration_s=1.0)

    @pytest.mark.parametrize("kwargs", [
        dict(start_s=-1.0, duration_s=1.0),
        dict(start_s=0.0, duration_s=0.0),
        dict(start_s=0.0, duration_s=1.0, severity=-0.1),
    ])
    def test_invalid_numbers_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultEvent("motion_burst", **kwargs)


class TestLinkSpec:
    def test_default_is_perfect(self):
        assert LinkSpec().impaired is False

    @pytest.mark.parametrize("kwargs", [
        dict(loss_rate=0.1),
        dict(duplicate_rate=0.05),
        dict(reorder_rate=0.2),
        dict(jitter_s=1.0),
    ])
    def test_any_impairment_flags(self, kwargs):
        assert LinkSpec(**kwargs).impaired is True

    @pytest.mark.parametrize("kwargs", [
        dict(loss_rate=1.0),
        dict(duplicate_rate=-0.1),
        dict(jitter_s=-1.0),
        dict(max_alarm_retx=0),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LinkSpec(**kwargs)


class TestScenarioSpec:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec(name="")

    def test_faults_normalized_to_tuple(self):
        spec = ScenarioSpec(name="s", faults=[
            FaultEvent("motion_burst", 0.0, 1.0)])
        assert isinstance(spec.faults, tuple)


class TestBuiltinScenarios:
    def test_default_grid_has_required_scenarios(self):
        grid = default_grid(60.0)
        names = [s.name for s in grid]
        assert len(grid) >= 4
        assert names[0] == "clean"
        assert len(set(names)) == len(names)

    def test_clean_is_a_control(self):
        spec = clean_scenario()
        assert not spec.faults
        assert not spec.link.impaired

    def test_motion_bursts_within_recording(self):
        spec = motion_burst_scenario(120.0, n_bursts=4)
        for fault in spec.faults:
            assert 0.0 <= fault.start_s < 120.0

    def test_packet_loss_rate_encoded_in_name(self):
        spec = packet_loss_scenario(0.10)
        assert spec.name == "loss-10pct"
        assert spec.link.loss_rate == pytest.approx(0.10)

    def test_lead_off_targets_delineation_lead(self):
        spec = lead_off_scenario(60.0)
        kinds = {f.kind for f in spec.faults}
        assert "lead_off" in kinds and "saturation" in kinds
        assert all(f.lead == 1 for f in spec.faults)

    def test_stress_combines_signal_and_link(self):
        spec = stress_scenario(60.0)
        assert spec.faults and spec.link.impaired


class TestFaultSeverityValidation:
    """NaN severities must be rejected at the spec boundary."""

    def test_nan_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            FaultEvent(kind="battery_drain", start_s=0.0,
                       duration_s=10.0, severity=float("nan"))

    def test_infinite_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            FaultEvent(kind="motion_burst", start_s=0.0,
                       duration_s=10.0, severity=float("inf"))
