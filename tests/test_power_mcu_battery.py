"""Unit tests for MCU/front-end models and battery lifetime."""

import pytest

from repro.power import Battery, BatteryModel, FrontEndModel, McuModel


class TestMcuModel:
    def test_energy_per_cycle(self):
        mcu = McuModel(clock_hz=1e6, active_power_w=0.5e-3)
        assert mcu.energy_per_cycle == pytest.approx(0.5e-9)

    def test_compute_energy_linear(self):
        mcu = McuModel()
        assert mcu.compute_energy(2_000_000) == pytest.approx(
            2 * mcu.compute_energy(1_000_000))

    def test_rtos_overhead_scales_with_time(self):
        mcu = McuModel()
        assert mcu.rtos_energy(10.0) == pytest.approx(
            10 * mcu.rtos_energy(1.0))

    def test_rtos_overhead_magnitude(self):
        # 100 Hz tick x 400 cycles = 40k cycles/s: 4 % of a 1 MHz core.
        mcu = McuModel()
        busy_fraction = (mcu.rtos_tick_hz * mcu.rtos_tick_cycles
                         / mcu.clock_hz)
        assert busy_fraction == pytest.approx(0.04)

    def test_idle_energy(self):
        mcu = McuModel(sleep_power_w=2e-6)
        assert mcu.idle_energy(10.0, active_fraction=0.25) == pytest.approx(
            2e-6 * 10.0 * 0.75)


class TestFrontEnd:
    def test_sampling_energy_components(self):
        frontend = FrontEndModel(energy_per_sample_j=50e-9,
                                 bias_power_w=3e-6)
        energy = frontend.sampling_energy(250, 3, 1.0)
        assert energy == pytest.approx(250 * 3 * 50e-9 + 3e-6 * 3)

    def test_more_leads_cost_more(self):
        frontend = FrontEndModel()
        assert frontend.sampling_energy(250, 3, 1.0) > \
            2.9 * frontend.sampling_energy(250, 1, 1.0)


class TestBattery:
    def test_usable_energy(self):
        battery = Battery(capacity_mah=150.0, voltage_v=3.7,
                          usable_fraction=0.85)
        expected = 0.150 * 3600 * 3.7 * 0.85
        assert battery.usable_energy_j == pytest.approx(expected)

    def test_lifetime_inverse_in_power(self):
        battery = Battery(self_discharge_per_month=0.0)
        assert battery.lifetime_days(1e-3) == pytest.approx(
            2 * battery.lifetime_days(2e-3))

    def test_lifetime_week_scale_at_milliwatts(self):
        # A 150 mAh cell at ~2.8 mW lasts about one week — the paper's
        # "mean time between charges is typically one week".
        battery = Battery()
        days = battery.lifetime_days(2.8e-3)
        assert 5.0 <= days <= 9.0

    def test_zero_power_limited_by_self_discharge(self):
        battery = Battery(self_discharge_per_month=0.05)
        assert battery.lifetime_days(0.0) < float("inf")
        no_leak = Battery(self_discharge_per_month=0.0)
        assert no_leak.lifetime_days(0.0) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_mah=0.0)
        with pytest.raises(ValueError):
            Battery(usable_fraction=1.5)
        with pytest.raises(ValueError):
            Battery().lifetime_days(-1.0)


class TestBatteryModel:
    def test_full_cell_energy_matches_spec(self):
        model = BatteryModel(cell=Battery(), soc=1.0)
        assert model.energy_remaining_j == pytest.approx(
            model.cell.usable_energy_j)
        assert not model.empty

    def test_drain_is_linear_in_power_and_time(self):
        cell = Battery(self_discharge_per_month=0.0)
        a = BatteryModel(cell=cell, soc=1.0)
        b = BatteryModel(cell=cell, soc=1.0)
        a.drain(2e-3, 3600.0)
        b.drain(1e-3, 3600.0)
        b.drain(1e-3, 3600.0)
        assert a.soc == pytest.approx(b.soc)

    def test_drain_charges_self_discharge_on_top(self):
        leaky = BatteryModel(cell=Battery(self_discharge_per_month=0.5),
                             soc=1.0)
        tight = BatteryModel(cell=Battery(self_discharge_per_month=0.0),
                             soc=1.0)
        leaky.drain(1e-3, 86400.0)
        tight.drain(1e-3, 86400.0)
        assert leaky.soc < tight.soc

    def test_end_of_discharge_clamps_at_zero(self):
        model = BatteryModel(cell=Battery(capacity_mah=0.001), soc=0.5)
        soc = model.drain(1.0, 3600.0)  # far more than the cell holds
        assert soc == 0.0
        assert model.empty
        assert model.energy_remaining_j == 0.0

    def test_empty_battery_drains_no_further(self):
        model = BatteryModel(soc=0.0)
        assert model.drain(1.0, 3600.0) == 0.0
        assert model.hours_to_empty(1e-3) == 0.0

    def test_recharge_resets_state_of_charge(self):
        model = BatteryModel(soc=0.0)
        model.recharge(0.8)
        assert model.soc == 0.8
        assert not model.empty

    def test_hours_to_empty_scales_with_soc(self):
        cell = Battery(self_discharge_per_month=0.0)
        full = BatteryModel(cell=cell, soc=1.0)
        half = BatteryModel(cell=cell, soc=0.5)
        assert full.hours_to_empty(1e-3) == pytest.approx(
            2 * half.hours_to_empty(1e-3))

    def test_hours_to_empty_matches_lifetime_days(self):
        model = BatteryModel(soc=1.0)
        assert model.hours_to_empty(2.8e-3) == pytest.approx(
            24.0 * model.cell.lifetime_days(2.8e-3))

    def test_zero_load_is_self_discharge_limited(self):
        leaky = BatteryModel(cell=Battery(self_discharge_per_month=0.05))
        assert leaky.hours_to_empty(0.0) < float("inf")
        tight = BatteryModel(cell=Battery(self_discharge_per_month=0.0))
        assert tight.hours_to_empty(0.0) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            BatteryModel(soc=1.5)
        model = BatteryModel()
        with pytest.raises(ValueError):
            model.drain(-1.0, 1.0)
        with pytest.raises(ValueError):
            model.drain(1.0, -1.0)
        with pytest.raises(ValueError):
            model.recharge(-0.1)
        with pytest.raises(ValueError):
            model.hours_to_empty(-1.0)


class TestBatteryModelEdgeCases:
    """NaN/negative rejection and FP clamping (battery bugfix PR)."""

    def test_nan_power_rejected_not_silently_zeroed(self):
        # max(0.0, soc - nan) evaluates to 0.0, so before the guard a
        # single NaN parasitic watt "killed" the battery silently.
        model = BatteryModel()
        with pytest.raises(ValueError, match="power"):
            model.drain(float("nan"), 60.0)
        assert model.soc == 1.0  # untouched

    def test_nan_dt_rejected(self):
        with pytest.raises(ValueError, match="dt"):
            BatteryModel().drain(1e-3, float("nan"))

    def test_hours_to_empty_rejects_nan(self):
        with pytest.raises(ValueError, match="power"):
            BatteryModel().hours_to_empty(float("nan"))

    def test_lifetime_days_rejects_nan(self):
        with pytest.raises(ValueError, match="power"):
            Battery().lifetime_days(float("nan"))

    def test_lifetime_days_infinite_load_is_zero(self):
        assert Battery().lifetime_days(float("inf")) == 0.0

    def test_many_tiny_drains_stay_inside_unit_interval(self):
        model = BatteryModel()
        for _ in range(20_000):
            model.drain(1e-9, 1e-6)
        assert 0.0 <= model.soc <= 1.0

    def test_soc_marginally_outside_is_snapped(self):
        # Caller arithmetic like 1 - span * frac can land an ulp out.
        assert BatteryModel(soc=1.0 + 1e-12).soc == 1.0
        assert BatteryModel(soc=-1e-12).soc == 0.0

    def test_soc_clearly_outside_still_rejected(self):
        with pytest.raises(ValueError, match="soc"):
            BatteryModel(soc=1.1)
        with pytest.raises(ValueError, match="soc"):
            BatteryModel(soc=float("nan"))

    def test_recharge_snaps_and_validates(self):
        model = BatteryModel(soc=0.2)
        model.recharge(1.0 + 1e-13)
        assert model.soc == 1.0
        with pytest.raises(ValueError, match="soc"):
            model.recharge(-0.5)
