"""Virtual-time structured trace events, byte-reproducible from a seed.

A :class:`TraceRecorder` collects :class:`TraceEvent` records stamped
with **virtual time only** — the scheduler's simulated clock, a packet
timestamp, a governor decision time — never the wall clock.  Because
every stamp derives from the seeded simulation, two runs with the same
master seed produce byte-identical canonical trace JSON, and an
N-shard run produces the same canonical trace as a 1-shard run once the
per-shard streams are merged and re-sorted.

The ordering contract that makes the merge exact:

* every **fleet-scope** event names a ``subject`` (usually a patient
  id) and carries a per-``(subject, name-independent)`` sequence number
  assigned in emission order — since a patient lives on exactly one
  shard, the ``(t_s, subject, seq)`` sort key totally orders fleet
  events the same way regardless of shard layout;
* **shard-scope** events (per-shard wall time, merge cost) may omit
  the subject and are excluded from the canonical stream.

Spans are recorded at completion time as a single event with a
``dur_s`` field (virtual duration), so no open/close pairing is needed
when merging.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.obs.metrics import SCOPE_FLEET, SCOPE_SERVE, SCOPE_SHARD

#: Event kinds: a point-in-time mark or a completed span with ``dur_s``.
KIND_INSTANT = "instant"
KIND_SPAN = "span"


class TraceError(ValueError):
    """Trace contract violation: missing subject, bad kind/scope."""


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record stamped with virtual time.

    Attributes:
        t_s: Virtual timestamp in seconds (scheduler tick time, packet
            timestamp, or decision time — never wall clock).
        name: Dotted event name, e.g. ``"gateway.ingest"``.
        kind: :data:`KIND_INSTANT` or :data:`KIND_SPAN`.
        scope: ``"fleet"`` (canonical, layout-independent) or
            ``"shard"`` (process-local).
        subject: Entity the event belongs to (patient id).  Required
            for fleet-scope events; optional for shard-scope.
        seq: Per-subject emission sequence number (ties within one
            virtual timestamp keep their emission order).
        dur_s: Virtual duration for spans, ``None`` for instants.
        attrs: Small JSON-safe payload (mode, reason, counts...).
    """

    t_s: float
    name: str
    kind: str
    scope: str
    subject: str
    seq: int
    dur_s: float | None = None
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready dict with sorted attribute keys."""
        out = {
            "t_s": float(self.t_s),
            "name": self.name,
            "kind": self.kind,
            "scope": self.scope,
            "subject": self.subject,
            "seq": self.seq,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }
        if self.dur_s is not None:
            out["dur_s"] = float(self.dur_s)
        return out


def _sort_key(event: dict) -> tuple:
    """Canonical total order: virtual time, subject, per-subject seq."""
    return (event["t_s"], event["subject"], event["seq"])


class TraceRecorder:
    """Collects trace events and renders a canonical merged stream.

    Args:
        capacity: Optional bound on retained events.  When exceeded the
            oldest events are dropped and counted in
            :attr:`n_dropped` — bounded memory for long soaks, at the
            cost of the determinism contract (canonical comparisons
            should run unbounded).
    """

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        self.n_dropped = 0
        self._seq: dict[str, int] = {}

    def _next_seq(self, subject: str) -> int:
        """Allocate the next per-subject sequence number."""
        seq = self._seq.get(subject, 0)
        self._seq[subject] = seq + 1
        return seq

    def _append(self, event: TraceEvent) -> None:
        """Store one event, enforcing the optional capacity bound."""
        self.events.append(event)
        if self.capacity is not None and len(self.events) > self.capacity:
            drop = len(self.events) - self.capacity
            del self.events[:drop]
            self.n_dropped += drop

    def instant(self, t_s: float, name: str, subject: str = "",
                scope: str = SCOPE_FLEET, **attrs) -> TraceEvent:
        """Record a point-in-time event at virtual time ``t_s``."""
        return self._record(t_s, name, KIND_INSTANT, scope, subject,
                            None, attrs)

    def span(self, t_s: float, name: str, dur_s: float,
             subject: str = "", scope: str = SCOPE_FLEET,
             **attrs) -> TraceEvent:
        """Record a completed span starting at ``t_s`` lasting ``dur_s``."""
        return self._record(t_s, name, KIND_SPAN, scope, subject,
                            float(dur_s), attrs)

    def _record(self, t_s, name, kind, scope, subject, dur_s,
                attrs) -> TraceEvent:
        """Validate and append one event."""
        if scope not in (SCOPE_FLEET, SCOPE_SHARD, SCOPE_SERVE):
            raise TraceError(f"unknown scope {scope!r}")
        if not math.isfinite(float(t_s)):
            raise TraceError(
                f"event {name!r}: virtual timestamp must be finite "
                f"(got {t_s}) — a NaN stamp breaks the canonical "
                f"(t_s, subject, seq) sort")
        if scope == SCOPE_FLEET and not subject:
            raise TraceError(
                f"fleet-scope event {name!r} needs a subject so the "
                f"canonical order is shard-layout independent")
        event = TraceEvent(t_s=float(t_s), name=name, kind=kind,
                           scope=scope, subject=subject,
                           seq=self._next_seq(subject), attrs=attrs,
                           dur_s=dur_s)
        self._append(event)
        return event

    def snapshot(self, scope: str | None = None) -> dict:
        """Deterministic dict view of the recorded stream.

        Args:
            scope: Restrict to one scope; :data:`~repro.obs.metrics.SCOPE_FLEET`
                yields the canonical stream used for N-shard == 1-shard
                comparisons.

        Returns:
            ``{"events": [...], "n_dropped": int}`` with events in
            canonical ``(t_s, subject, seq)`` order.
        """
        rows = [e.to_dict() for e in self.events
                if scope is None or e.scope == scope]
        rows.sort(key=_sort_key)
        return {"events": rows, "n_dropped": self.n_dropped}


def canonical_trace_json(snapshot: dict) -> str:
    """Byte-stable serialization of one trace snapshot."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def merge_trace_snapshots(snapshots: list[dict]) -> dict:
    """Fold N trace snapshots into one canonical stream.

    Concatenates the event lists and re-sorts by the canonical
    ``(t_s, subject, seq)`` key.  Exact because each subject's events
    all come from the shard that owns it, so per-subject sequence
    numbers never collide across inputs.
    """
    events: list[dict] = []
    n_dropped = 0
    for snapshot in snapshots:
        events.extend(snapshot.get("events", ()))
        n_dropped += snapshot.get("n_dropped", 0)
    events.sort(key=_sort_key)
    return {"events": events, "n_dropped": n_dropped}
