"""Unit tests for HRV analysis (paper §I-II sleep/behaviour tier)."""

import numpy as np
import pytest

from repro.delineation import RPeakDetector
from repro.multimodal import (
    analyze_hrv,
    frequency_domain_hrv,
    resample_tachogram,
    time_domain_hrv,
)
from repro.signals import SynthesisConfig, sinus_rhythm, synthesize


class TestTimeDomain:
    def test_constant_rr(self):
        metrics = time_domain_hrv(np.full(50, 0.8))
        assert metrics.mean_rr_s == pytest.approx(0.8)
        assert metrics.sdnn_ms == pytest.approx(0.0, abs=1e-9)
        assert metrics.rmssd_ms == pytest.approx(0.0, abs=1e-9)
        assert metrics.pnn50 == 0.0
        assert metrics.mean_hr_bpm == pytest.approx(75.0)

    def test_known_variability(self, rng):
        rr = 0.8 + 0.05 * rng.standard_normal(2000)
        metrics = time_domain_hrv(rr)
        assert metrics.sdnn_ms == pytest.approx(50.0, rel=0.1)
        # Independent samples: RMSSD = sqrt(2) * SDNN.
        assert metrics.rmssd_ms == pytest.approx(np.sqrt(2) * 50.0,
                                                 rel=0.12)

    def test_needs_two_intervals(self):
        with pytest.raises(ValueError, match="at least two"):
            time_domain_hrv(np.array([0.8]))


class TestTachogram:
    def test_even_sampling(self):
        times = np.cumsum(np.full(30, 0.75))
        t, rr_ms = resample_tachogram(times, resample_hz=4.0)
        assert np.allclose(np.diff(t), 0.25)
        assert np.allclose(rr_ms, 750.0)

    def test_needs_three_beats(self):
        with pytest.raises(ValueError, match="three beats"):
            resample_tachogram(np.array([0.0, 0.8]))


class TestFrequencyDomain:
    def _rr_times(self, mod_hz, duration_s=300.0, mean_rr=0.8,
                  depth=0.05):
        times = [0.0]
        while times[-1] < duration_s:
            rr = mean_rr * (1 + depth * np.sin(2 * np.pi * mod_hz
                                               * times[-1]))
            times.append(times[-1] + rr)
        return np.array(times)

    def test_respiratory_modulation_lands_in_hf(self):
        metrics = frequency_domain_hrv(self._rr_times(0.25))
        assert metrics.hf_power > 5 * metrics.lf_power
        assert metrics.lf_hf_ratio < 0.2

    def test_mayer_wave_lands_in_lf(self):
        metrics = frequency_domain_hrv(self._rr_times(0.1))
        assert metrics.lf_power > 5 * metrics.hf_power
        assert metrics.lf_hf_ratio > 5.0

    def test_short_window_rejected(self):
        times = np.cumsum(np.full(20, 0.8))
        with pytest.raises(ValueError, match="too short"):
            frequency_domain_hrv(times)


class TestEndToEnd:
    def test_analysis_from_detected_peaks(self):
        rng = np.random.default_rng(3)
        segment = sinus_rhythm(180.0, mean_hr_bpm=66.0, hrv_std_s=0.04,
                               rng=rng)
        record = synthesize(segment, SynthesisConfig(snr_db=22.0), rng=rng)
        ecg = record.lead(1)
        peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
        report = analyze_hrv(peaks, ecg.fs)
        assert report.time.mean_hr_bpm == pytest.approx(66.0, rel=0.05)
        assert report.time.sdnn_ms == pytest.approx(40.0, rel=0.4)
        assert report.frequency is not None
        # The synthesizer's bimodal RR spectrum puts substantial power in
        # both bands (tachogram interpolation attenuates HF, so exact
        # dominance is not asserted here; band selectivity is covered by
        # TestFrequencyDomain with single-tone modulations).
        assert report.frequency.hf_power > 0.3 * report.frequency.lf_power
        assert report.frequency.lf_power > 0.0

    def test_spectral_gracefully_skipped_when_short(self):
        report = analyze_hrv(np.arange(5) * 200, fs=250.0)
        assert report.frequency is None
        assert report.time.mean_rr_s == pytest.approx(0.8)
