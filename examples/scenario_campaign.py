"""Fault-injection campaign: one cohort swept across a scenario grid.

Stress-tests the full node -> uplink -> gateway -> triage chain under
the deployments the clean fleet demo never sees: motion-artifact
bursts, baseline wander, lead-off/reattach, saturation, and a lossy
radio (packet loss, duplication, reordering, jitter).  Every waveform
and every per-packet channel draw derives from ONE master seed —
rerunning with the same seed reproduces the report byte for byte.

Run:  python examples/scenario_campaign.py [--patients 20] [--seed 2014]
      (add --json to dump the machine-readable report)
"""

from __future__ import annotations

import argparse

from repro.scenarios import CampaignConfig, CampaignRunner, default_grid


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=20,
                        help="cohort size (includes the sentinels)")
    parser.add_argument("--sentinels", type=int, default=2,
                        help="clean-AF sentinel patients")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds per patient")
    parser.add_argument("--seed", type=int, default=2014,
                        help="master seed the whole campaign derives from")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON report instead of the table")
    args = parser.parse_args()

    config = CampaignConfig(
        n_patients=args.patients,
        n_sentinels=min(args.sentinels, args.patients),
        duration_s=args.duration,
        master_seed=args.seed,
    )
    grid = default_grid(args.duration)
    print(f"campaign grid: {', '.join(s.name for s in grid)}")
    print("training fleet AF detector (seed-derived corpus) ...")
    runner = CampaignRunner(grid, config)
    report = runner.run()

    if args.json:
        print(report.to_json())
        return

    print()
    print(report.describe())
    print(f"\ntotal runtime: {report.total_runtime_s:.1f} s "
          f"({len(report.results)} scenarios x "
          f"{config.n_patients} patients)")
    loss = report.result("loss-10pct")
    print(f"under {loss.description}: "
          f"{loss.sentinel_confirmed_alarms}/"
          f"{loss.sentinel_node_alarms} sentinel AF alarms survived "
          f"({100 * loss.sentinel_false_drop_rate:.0f} % false-drop)")
    print(f"reproduce this exact report:  "
          f"python examples/scenario_campaign.py "
          f"--patients {args.patients} --duration {args.duration:g} "
          f"--seed {args.seed}")


if __name__ == "__main__":
    main()
