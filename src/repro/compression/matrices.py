"""Sensing and projection matrices (refs [15][16], paper §III-A/D, §IV-A).

Two families, both chosen by the paper for their embedded-friendliness:

* **Sparse binary** sensing matrices (Mamaghanian et al. [16]): each column
  holds exactly ``d`` ones.  The encoder then needs only ``d`` integer
  additions per input sample — no multiplications — and §IV-A notes that
  "few non-zero elements in the sensing matrix suffice to achieve
  close-to-optimal results".

* **Achlioptas ternary** matrices [15] with entries {+1, 0, -1} drawn with
  probabilities {1/6, 2/3, 1/6}: the database-friendly random projection
  used for classification features, storable at two bits per entry
  (§IV-A's memory optimization, implemented in :func:`pack_ternary`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class SensingMatrix:
    """A sensing/projection matrix with its construction metadata.

    Attributes:
        matrix: The ``(m, n)`` array (float for algebra, but its entries
            come from an integer alphabet).
        kind: Construction family (``sparse_binary`` / ``ternary`` /
            ``dense_sign`` / ``gaussian``).
        nonzeros_per_column: For sparse-binary matrices, the ``d`` used.
    """

    matrix: np.ndarray
    kind: str
    nonzeros_per_column: int | None = None

    @property
    def shape(self) -> tuple[int, int]:
        """Matrix shape ``(m, n)``."""
        return self.matrix.shape

    @property
    def m(self) -> int:
        """Number of measurements."""
        return self.matrix.shape[0]

    @property
    def n(self) -> int:
        """Input window length."""
        return self.matrix.shape[1]

    @property
    def nnz(self) -> int:
        """Number of non-zero entries (= integer adds per window)."""
        return int(np.count_nonzero(self.matrix))

    def additions_per_window(self) -> int:
        """Integer additions needed to apply the matrix once."""
        return self.nnz

    def storage_bits(self) -> int:
        """Storage needed on the node.

        Two bits per entry for ternary/sign alphabets ({0, +1, -1}); for
        sparse-binary, ``d`` row indices per column (log2(m) bits each) is
        the compact form the paper's implementation uses.
        """
        if self.kind == "sparse_binary" and self.nonzeros_per_column:
            bits_per_index = max(1, int(np.ceil(np.log2(max(2, self.m)))))
            return self.n * self.nonzeros_per_column * bits_per_index
        return 2 * self.m * self.n


def sparse_binary_matrix(m: int, n: int, d: int = 12,
                         rng: np.random.Generator | None = None,
                         ) -> SensingMatrix:
    """Sparse binary sensing matrix: exactly ``d`` ones per column.

    Args:
        m: Number of measurements (rows).
        n: Window length (columns).
        d: Ones per column; must satisfy ``d <= m``.
        rng: Random generator.

    Raises:
        ValueError: If the shape or density is invalid.
    """
    if not 0 < m <= n:
        raise ValueError("require 0 < m <= n")
    if not 0 < d <= m:
        raise ValueError("require 0 < d <= m")
    rng = rng or np.random.default_rng()
    matrix = np.zeros((m, n))
    for col in range(n):
        rows = rng.choice(m, size=d, replace=False)
        matrix[rows, col] = 1.0
    return SensingMatrix(matrix, kind="sparse_binary", nonzeros_per_column=d)


def ternary_matrix(m: int, n: int, rng: np.random.Generator | None = None,
                   ) -> SensingMatrix:
    """Achlioptas sparse ternary matrix, entries sqrt(3)*{+1,0,-1}.

    The sqrt(3) scale preserves expected norms (Johnson-Lindenstrauss);
    on the node it is folded into downstream constants so the stored
    alphabet stays {+1, 0, -1}.
    """
    if m <= 0 or n <= 0:
        raise ValueError("matrix dimensions must be positive")
    rng = rng or np.random.default_rng()
    u = rng.uniform(size=(m, n))
    matrix = np.where(u < 1 / 6, 1.0, np.where(u < 2 / 6, -1.0, 0.0))
    return SensingMatrix(np.sqrt(3.0) * matrix, kind="ternary")


def dense_sign_matrix(m: int, n: int, rng: np.random.Generator | None = None,
                      ) -> SensingMatrix:
    """Dense +-1 (Rademacher) matrix — the non-sparse RP baseline."""
    if m <= 0 or n <= 0:
        raise ValueError("matrix dimensions must be positive")
    rng = rng or np.random.default_rng()
    matrix = rng.choice([-1.0, 1.0], size=(m, n))
    return SensingMatrix(matrix, kind="dense_sign")


def gaussian_matrix(m: int, n: int, rng: np.random.Generator | None = None,
                    ) -> SensingMatrix:
    """Dense Gaussian matrix — the classical CS reference construction."""
    if m <= 0 or n <= 0:
        raise ValueError("matrix dimensions must be positive")
    rng = rng or np.random.default_rng()
    matrix = rng.standard_normal((m, n)) / np.sqrt(m)
    return SensingMatrix(matrix, kind="gaussian")


@dataclass
class PackedTernary:
    """A ternary matrix packed at 2 bits/entry (§IV-A memory optimization).

    Encoding per entry: 0 -> 00, +1 -> 01, -1 -> 10.
    """

    shape: tuple[int, int]
    scale: float
    words: np.ndarray = field(repr=False)

    @property
    def storage_bytes(self) -> int:
        """Bytes used by the packed representation."""
        return int(self.words.nbytes)


def pack_ternary(matrix: SensingMatrix) -> PackedTernary:
    """Pack a ternary/sign matrix into 2-bit codes.

    Raises:
        ValueError: If the matrix alphabet is not {0, +s, -s}.
    """
    values = matrix.matrix
    nonzero = values[values != 0]
    if nonzero.size == 0:
        scale = 1.0
    else:
        scale = float(np.abs(nonzero).flat[0])
        if not np.allclose(np.abs(nonzero), scale):
            raise ValueError("matrix is not a scaled ternary matrix")
    codes = np.zeros(values.shape, dtype=np.uint8)
    codes[values > 0] = 1
    codes[values < 0] = 2
    flat = codes.ravel()
    # Pad to a multiple of 4 entries (4 entries per byte).
    pad = (-flat.shape[0]) % 4
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=np.uint8)])
    flat = flat.reshape(-1, 4)
    packed = (flat[:, 0] | (flat[:, 1] << 2) | (flat[:, 2] << 4)
              | (flat[:, 3] << 6)).astype(np.uint8)
    return PackedTernary(shape=values.shape, scale=scale, words=packed)


def unpack_ternary(packed: PackedTernary) -> np.ndarray:
    """Reverse :func:`pack_ternary`, returning the float matrix."""
    words = packed.words
    entries = np.empty((words.shape[0], 4), dtype=np.uint8)
    entries[:, 0] = words & 0x3
    entries[:, 1] = (words >> 2) & 0x3
    entries[:, 2] = (words >> 4) & 0x3
    entries[:, 3] = (words >> 6) & 0x3
    flat = entries.ravel()[: packed.shape[0] * packed.shape[1]]
    values = np.zeros(flat.shape[0])
    values[flat == 1] = packed.scale
    values[flat == 2] = -packed.scale
    return values.reshape(packed.shape)
