"""Multi-patient fleet: cohorts, uplink, gateway reconstruction, triage.

The paper's node (§V) transmits CS-compressed excerpts "periodically or
when an abnormality is detected" — and stops there.  This package models
the receiving half at fleet scale: a cohort of heterogeneous virtual
patients (:mod:`repro.fleet.cohort`), per-patient node proxies emitting
timestamped uplink packets (:mod:`repro.fleet.node_proxy`), a gateway
that demultiplexes the uplink, reconstructs the CS excerpts server-side
and re-checks node alarms (:mod:`repro.fleet.gateway`), per-patient
triage state machines with fleet aggregates (:mod:`repro.fleet.triage`),
and a batched scheduler that drives many patients per tick
(:mod:`repro.fleet.scheduler`) — by default as a lockstep façade over
the discrete-event kernel of :mod:`repro.fleet.kernel`, which also
runs heterogeneous per-node uplink schedules (sparse cohorts) with
cost proportional to events rather than ticks.

Packets also have an exact binary form (:mod:`repro.fleet.wire`), which
is what lets the whole runtime shard across worker processes:
:class:`~repro.fleet.ShardedFleetRunner` (:mod:`repro.fleet.sharding`)
partitions a cohort into per-process scheduler+gateway stripes and
merges their wire-encoded results into one byte-identical
:class:`FleetSummary`.

On top of the wire codec sits the network-native serving layer: the
:func:`serve` gateway service (:mod:`repro.fleet.serve`) accepts patient
nodes as concurrent TCP clients (:class:`FleetClient`,
:mod:`repro.fleet.client`) streaming length-delimited frames, and
:func:`run_served_fleet` drives a whole cohort through real sockets to
a summary byte-identical to the in-process engine's.
"""

from .client import FleetClient, RemoteBoard, RemoteGateway

from .cohort import (
    CohortConfig,
    PatientProfile,
    make_cohort,
    synthesize_patient,
)
from .gateway import (
    Gateway,
    GatewayConfig,
    PatientChannel,
    ReconstructedExcerpt,
)
from .journal import (
    GatewaySession,
    JournalConfig,
    JournalError,
    JournalReader,
    JournalRecord,
    JournalReplayer,
    JournalWriter,
    ReplayReport,
    journal_meta,
)
from .kernel import (
    PRIORITIES,
    Event,
    EventKernel,
    KernelError,
)
from .node_proxy import (
    PACKET_ALARM,
    PACKET_EXCERPT,
    PACKET_TELEMETRY,
    TELEMETRY_BITS,
    NodeProxy,
    NodeProxyConfig,
    UplinkPacket,
)
from .scheduler import (
    AcuityOverride,
    BatchExcerptEncoder,
    ExtraLoad,
    FleetReport,
    FleetScheduler,
    GovernorFactory,
    SchedulerConfig,
    UplinkChannel,
)
from .serve import (
    FleetGatewayServer,
    ServeConfig,
    ServedFleetReport,
    ServeError,
    run_served_fleet,
    serve,
)
from .sharding import (
    PerPatientLink,
    ShardedFleetReport,
    ShardedFleetRunner,
    ShardHookFactory,
    ShardHooks,
    ShardPatientRow,
    merge_patient_rows,
    partition_cohort,
)
from .triage import (
    STATE_ALERT,
    STATE_OK,
    STATE_WATCH,
    FleetSummary,
    PatientTriage,
    TriageBoard,
    TriageConfig,
    fleet_summary,
)
from .wire import (
    MAX_FRAME_BYTES,
    MESSAGE_MAGIC,
    WIRE_MAGIC,
    WIRE_VERSION,
    ServeMessage,
    StreamDecoder,
    WireFormatError,
    decode_message,
    decode_packet,
    decode_packets,
    encode_message,
    encode_packet,
    encode_packets,
    encode_stream_frame,
    frame_kind,
)

__all__ = [
    "AcuityOverride",
    "BatchExcerptEncoder",
    "CohortConfig",
    "Event",
    "EventKernel",
    "ExtraLoad",
    "FleetClient",
    "FleetGatewayServer",
    "FleetReport",
    "FleetScheduler",
    "FleetSummary",
    "Gateway",
    "GatewayConfig",
    "GatewaySession",
    "GovernorFactory",
    "JournalConfig",
    "JournalError",
    "JournalReader",
    "JournalRecord",
    "JournalReplayer",
    "JournalWriter",
    "KernelError",
    "MAX_FRAME_BYTES",
    "MESSAGE_MAGIC",
    "PRIORITIES",
    "NodeProxy",
    "NodeProxyConfig",
    "PACKET_ALARM",
    "PACKET_EXCERPT",
    "PACKET_TELEMETRY",
    "TELEMETRY_BITS",
    "PatientChannel",
    "PatientProfile",
    "PatientTriage",
    "PerPatientLink",
    "ReconstructedExcerpt",
    "RemoteBoard",
    "RemoteGateway",
    "ReplayReport",
    "STATE_ALERT",
    "STATE_OK",
    "STATE_WATCH",
    "SchedulerConfig",
    "ServeConfig",
    "ServeError",
    "ServeMessage",
    "ServedFleetReport",
    "ShardHookFactory",
    "ShardHooks",
    "ShardPatientRow",
    "ShardedFleetReport",
    "ShardedFleetRunner",
    "StreamDecoder",
    "TriageBoard",
    "TriageConfig",
    "UplinkChannel",
    "UplinkPacket",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WireFormatError",
    "decode_message",
    "decode_packet",
    "decode_packets",
    "encode_message",
    "encode_packet",
    "encode_packets",
    "encode_stream_frame",
    "fleet_summary",
    "frame_kind",
    "journal_meta",
    "make_cohort",
    "merge_patient_rows",
    "partition_cohort",
    "run_served_fleet",
    "serve",
    "synthesize_patient",
]
