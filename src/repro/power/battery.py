"""Battery-lifetime estimation ("mean time between charges is typically
one week", paper §V).

Small wearables carry 100-200 mAh lithium-polymer cells; this module turns
an average node power into a recharge interval, including self-discharge
and a usable-capacity derating.  :class:`Battery` is the immutable cell
spec; :class:`BatteryModel` tracks a state of charge over a simulated
stretch so closed-loop policies (:mod:`repro.power.governor`) can react
to the remaining budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Tolerance for snapping a state of charge back onto ``[0, 1]``:
#: repeated tiny drains (or caller arithmetic like ``1 - span * frac``)
#: can land an SoC a few ulps outside the interval; anything within
#: this band is floating-point noise, anything beyond is a caller bug.
_SOC_EPS = 1e-9


def _clamped_soc(soc: float, context: str) -> float:
    """Validate and clamp one state-of-charge value onto ``[0, 1]``.

    Raises:
        ValueError: ``soc`` is NaN or lies outside the interval by more
            than :data:`_SOC_EPS`.
    """
    if not math.isfinite(soc) or soc < -_SOC_EPS or soc > 1.0 + _SOC_EPS:
        raise ValueError(f"{context} must lie in [0, 1], got {soc}")
    return min(1.0, max(0.0, soc))


@dataclass(frozen=True)
class Battery:
    """A small LiPo cell.

    Attributes:
        capacity_mah: Nominal capacity.
        voltage_v: Nominal cell voltage.
        usable_fraction: Usable depth of discharge (protection cutoffs,
            converter efficiency).
        self_discharge_per_month: Monthly self-discharge fraction.
    """

    capacity_mah: float = 150.0
    voltage_v: float = 3.7
    usable_fraction: float = 0.85
    self_discharge_per_month: float = 0.05

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.voltage_v <= 0:
            raise ValueError("capacity and voltage must be positive")
        if not 0 < self.usable_fraction <= 1:
            raise ValueError("usable_fraction must lie in (0, 1]")

    @property
    def usable_energy_j(self) -> float:
        """Usable energy in joules."""
        return (self.capacity_mah / 1000.0) * 3600.0 * self.voltage_v \
            * self.usable_fraction

    def self_discharge_power_w(self) -> float:
        """Average self-discharge drain."""
        month_s = 30 * 24 * 3600.0
        return self.usable_energy_j * self.self_discharge_per_month / month_s

    def lifetime_days(self, average_power_w: float) -> float:
        """Days between charges at a given average node power.

        Raises:
            ValueError: ``average_power_w`` is negative or NaN.
        """
        if math.isnan(average_power_w) or average_power_w < 0:
            raise ValueError("average power must be non-negative, got "
                             f"{average_power_w}")
        if math.isinf(average_power_w):
            return 0.0
        drain = average_power_w + self.self_discharge_power_w()
        if drain == 0:
            return float("inf")
        return self.usable_energy_j / drain / 86400.0


@dataclass
class BatteryModel:
    """Stateful battery: a :class:`Battery` cell plus a state of charge.

    The state of charge (SoC) is the fraction of *usable* energy
    remaining, so ``soc == 0`` is the protection cutoff, not a damaged
    cell.  Draining past empty clamps at zero (end of discharge): the
    converter browns the node out and no further energy can be drawn —
    callers should treat an :attr:`empty` battery as a dead radio.

    Attributes:
        cell: The immutable cell specification.
        soc: State of charge in ``[0, 1]`` (fraction of usable energy).
    """

    cell: Battery = field(default_factory=Battery)
    soc: float = 1.0

    def __post_init__(self) -> None:
        self.soc = _clamped_soc(self.soc, "soc")

    @property
    def energy_remaining_j(self) -> float:
        """Usable joules left at the current state of charge."""
        return self.soc * self.cell.usable_energy_j

    @property
    def empty(self) -> bool:
        """End of discharge reached (protection cutoff)."""
        return self.soc <= 0.0

    def drain(self, power_w: float, dt_s: float) -> float:
        """Draw ``power_w`` for ``dt_s`` seconds; return the new SoC.

        Self-discharge is charged on top of the load.  The SoC clamps
        onto ``[0, 1]`` — once empty, further draining is a no-op (the
        node is browned out, it cannot draw more than the cell holds),
        and floating-point accumulation over many tiny drains can never
        push the SoC marginally outside the interval.

        Raises:
            ValueError: ``power_w`` or ``dt_s`` is negative or NaN
                (e.g. a corrupt parasitic-watts value from
                ``battery_drain`` fault injection); a NaN here would
                otherwise silently zero the SoC and poison every
                hours-to-empty projection downstream.
        """
        if math.isnan(power_w) or power_w < 0:
            raise ValueError(f"power must be non-negative, got {power_w}")
        if math.isnan(dt_s) or dt_s < 0:
            raise ValueError(f"dt must be non-negative, got {dt_s}")
        if self.empty:
            return self.soc
        drawn = (power_w + self.cell.self_discharge_power_w()) * dt_s
        self.soc = min(1.0, max(0.0,
                                self.soc - drawn
                                / self.cell.usable_energy_j))
        return self.soc

    def recharge(self, soc: float = 1.0) -> None:
        """Reset the state of charge (a charging dock visit)."""
        self.soc = _clamped_soc(soc, "soc")

    def hours_to_empty(self, power_w: float) -> float:
        """Projected hours until end of discharge at a constant load.

        Raises:
            ValueError: ``power_w`` is negative or NaN (a corrupt load
                must fail loudly, not project a NaN lifetime).
        """
        if math.isnan(power_w) or power_w < 0:
            raise ValueError(f"power must be non-negative, got {power_w}")
        drain = power_w + self.cell.self_discharge_power_w()
        if drain == 0:
            return float("inf")
        return self.energy_remaining_j / drain / 3600.0
