"""Tests for the network-native gateway service (`repro.fleet.serve`)."""

from __future__ import annotations

import functools
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    CohortConfig,
    FleetGatewayServer,
    FleetScheduler,
    Gateway,
    GatewayConfig,
    NodeProxy,
    NodeProxyConfig,
    PatientProfile,
    PerPatientLink,
    SchedulerConfig,
    ServeConfig,
    ServeError,
    ServeMessage,
    ShardHooks,
    ShardedFleetRunner,
    StreamDecoder,
    WireFormatError,
    decode_message,
    decode_packets,
    encode_message,
    encode_packets,
    encode_stream_frame,
    make_cohort,
    run_served_fleet,
    serve,
)
from repro.fleet.client import _Transport
from repro.power import Battery, BatteryModel
from repro.power.governor import (
    EnergyGovernor,
    GovernorConfig,
    ModePowerTable,
)
from repro.scenarios import LinkSpec, derive_seed
from repro.scenarios.channel import ImpairedLink

COHORT = make_cohort(CohortConfig(n_patients=5, seed=7))
RUN_KW = dict(
    config=SchedulerConfig(duration_s=60.0, fs=250.0),
    node_config=NodeProxyConfig(stream_telemetry=False),
    gateway_config=GatewayConfig(n_iter=50),
)


def _telemetry_packets(n: int, patient_id: str = "t0") -> list:
    """Cheap ordered uplink packets (no synthesis, no CS encoding)."""
    proxy = NodeProxy(PatientProfile(patient_id=patient_id, seed=1),
                      NodeProxyConfig(stream_telemetry=False))
    return [proxy.telemetry_packet(float(i), mean_hr_bpm=60.0 + i,
                                   soc=0.5)
            for i in range(n)]


def _impaired_governed_hooks(spec: LinkSpec, profiles,
                             master_seed: int) -> ShardHooks:
    """Scenario wiring mirroring `tests/test_fleet_sharding.py`.

    Randomness derives from (master seed, patient id) only, so the
    served run and the sharded reference see identical impairments.
    """

    def link_for(patient_id: str):
        return ImpairedLink(spec, seed=derive_seed(master_seed, "link",
                                                   patient_id))

    def factory(profile):
        frac = derive_seed(master_seed, "soc",
                           profile.patient_id) % 1000 / 1000.0
        return EnergyGovernor(
            config=GovernorConfig(min_dwell_s=0.0),
            table=ModePowerTable(),
            battery=BatteryModel(cell=Battery(capacity_mah=0.05),
                                 soc=max(0.05, 0.9 - 0.5 * frac)))

    return ShardHooks(link=PerPatientLink(link_for),
                      governor_factory=factory)


@pytest.fixture(scope="module")
def plain_run():
    """The in-process reference run over the shared cohort."""
    return FleetScheduler(
        COHORT, RUN_KW["config"], node_config=RUN_KW["node_config"],
        gateway=Gateway(RUN_KW["gateway_config"])).run()


@pytest.fixture(scope="module")
def served_run():
    """The same cohort through real loopback TCP sockets."""
    return run_served_fleet(COHORT, **RUN_KW)


class TestServedByteEquivalence:
    """The serving determinism contract, end to end over sockets."""

    def test_served_summary_matches_in_process(self, plain_run,
                                               served_run):
        # The acceptance bar: identical bytes out of real sockets.
        assert served_run.summary.to_json() \
            == plain_run.summary.to_json()

    def test_packet_counts_and_rows(self, plain_run, served_run):
        assert served_run.packets_sent == plain_run.packets_sent
        assert list(served_run.rows) == [p.patient_id for p in COHORT]
        assert served_run.dropped_packets == 0

    def test_server_stats_accounted(self, served_run):
        stats = served_run.server_stats
        assert stats["connections"]["open"] == len(COHORT)
        assert stats["connections"].get("rejected", 0) == 0
        assert stats["sessions"] == len(COHORT)
        assert stats["frames"] == served_run.packets_sent
        assert stats["n_lanes"] == ServeConfig().n_lanes
        assert set(served_run.timings_s) == {"serve", "merge", "total"}

    def test_governed_impaired_served_matches_sharded(self):
        spec = LinkSpec(loss_rate=0.15, duplicate_rate=0.1,
                        reorder_rate=0.2, jitter_s=2.0,
                        reorder_delay_s=65.0)
        kw = dict(RUN_KW, master_seed=99,
                  hook_factory=functools.partial(
                      _impaired_governed_hooks, spec))
        reference = ShardedFleetRunner(COHORT[:4], n_shards=1,
                                       **kw).run()
        served = run_served_fleet(COHORT[:4], **kw)
        assert served.summary.to_json() == reference.summary.to_json()
        assert served.summary.governed
        assert any(row.link_stats for row in served.rows.values())


class TestServeConfig:
    def test_defaults_valid(self):
        config = ServeConfig()
        assert config.host == "127.0.0.1"
        assert config.port == 0

    @pytest.mark.parametrize("kwargs,match", [
        (dict(host=""), "host"),
        (dict(port=-1), "port"),
        (dict(port=70000), "port"),
        (dict(n_lanes=0), "n_lanes"),
        (dict(queue_capacity=0), "queue_capacity"),
        (dict(max_frame_bytes=16), "max_frame_bytes"),
        (dict(throttle_s=-0.1), "throttle_s"),
        (dict(throttle_s=float("inf")), "throttle_s"),
    ])
    def test_invalid_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ServeConfig(**kwargs)


class TestServerLifecycle:
    def test_serve_entry_point_and_context(self):
        server = serve(ServeConfig())
        try:
            assert server.port is not None and server.port > 0
            assert server.start() is server  # idempotent
        finally:
            server.stop()
        server.stop()  # idempotent too

    def test_port_conflict_raises_oserror(self):
        with FleetGatewayServer(ServeConfig()) as first:
            clash = FleetGatewayServer(ServeConfig(port=first.port))
            with pytest.raises(OSError):
                clash.start()


def _hello(server: FleetGatewayServer, patient_id: str,
           retries: int = 200) -> _Transport:
    """Connect and handshake, retrying while the old socket drains."""
    last: ServeError | None = None
    for _ in range(retries):
        transport = _Transport("127.0.0.1", server.port)
        try:
            transport.send_message(ServeMessage("hello", patient_id))
            ack = transport.recv_message()
            assert ack.kind == "hello-ack"
            return transport
        except ServeError as exc:
            transport.close()
            last = exc
            time.sleep(0.01)
    raise AssertionError(f"handshake never succeeded: {last}")


class TestConnectionSemantics:
    def test_reconnect_resumes_session_and_clock(self):
        with FleetGatewayServer(ServeConfig(n_lanes=1)) as server:
            first = _Transport("127.0.0.1", server.port)
            first.send_message(ServeMessage("hello", "px"))
            ack = first.recv_message()
            assert ack.info["resumed"] == "0"
            first.send_message(ServeMessage("sweep", "px", t_s=5.0))
            assert first.recv_message().kind == "feedback"
            first.close()

            second = _hello(server, "px")
            # Same session: gateway channel, triage machine and the
            # virtual clock all survived the disconnect.
            second.send_message(ServeMessage("sweep", "px", t_s=10.0))
            assert second.recv_message().kind == "feedback"
            # The monotone-clock guard spans reconnects: a command
            # stamped before the first connection's sweep is an error.
            second.send_message(ServeMessage("sweep", "px", t_s=3.0))
            with pytest.raises(ServeError):
                second.recv_message()
            second.close()
            assert list(server.sessions) == ["px"]
            assert server.stats()["connections"]["open"] == 1
            assert server.stats()["connections"]["resumed"] >= 1

    def test_duplicate_live_connection_rejected(self):
        with FleetGatewayServer(ServeConfig()) as server:
            first = _Transport("127.0.0.1", server.port)
            first.send_message(ServeMessage("hello", "dup"))
            assert first.recv_message().kind == "hello-ack"
            clone = _Transport("127.0.0.1", server.port)
            clone.send_message(ServeMessage("hello", "dup"))
            with pytest.raises(ServeError, match="duplicate"):
                clone.recv_message()
            clone.close()
            first.close()

    def test_non_hello_first_frame_closes_connection(self):
        with FleetGatewayServer(ServeConfig()) as server:
            transport = _Transport("127.0.0.1", server.port)
            transport.send_frame(_telemetry_packets(1)[0].to_bytes())
            with pytest.raises(ServeError):
                transport.recv_message()
            transport.close()

    def test_garbage_frame_gets_error_downlink(self):
        with FleetGatewayServer(ServeConfig()) as server:
            transport = _hello(server, "gb")
            transport.send_frame(b"\xde\xad\xbe\xef not a frame")
            with pytest.raises(ServeError, match="magic"):
                transport.recv_message()
            transport.close()


class TestBackpressure:
    def test_saturated_queue_loses_nothing(self):
        # A deliberately slow consumer (2 ms/frame) against a
        # 4-deep queue and a fast sender: the reader must stall the
        # socket instead of shedding frames.
        config = ServeConfig(queue_capacity=4, throttle_s=0.002)
        n_packets = 120
        with FleetGatewayServer(config) as server:
            transport = _hello(server, "bp")
            for packet in _telemetry_packets(n_packets, "bp"):
                transport.send_frame(packet.to_bytes())
            transport.send_message(ServeMessage(
                "report", "bp", t_s=60.0,
                fields={"n_sent": float(n_packets)},
                info={"governed": "0"}))
            assert transport.recv_message().kind == "report-ack"
            transport.close()
            session = server.sessions["bp"]
            assert session.n_frames == n_packets
            assert server.dropped == 0
            # The bounded queue actually filled (the gauge's whole
            # point) — backpressure engaged rather than idling.
            assert server.max_queue_depth >= config.queue_capacity - 1
            row = server.rows()["bp"]
            assert row.n_sent == n_packets


class TestServeMessageCodec:
    def test_round_trip_preserves_insertion_order(self):
        msg = ServeMessage(
            "report", "p9", t_s=12.5,
            fields={"zeta": 1.0, "alpha": -2.5,
                    "mode:raw": 60.0, "mode:multi_lead_cs": 30.0},
            info={"governed": "1", "state": "watch"})
        out = decode_message(encode_message(msg))
        assert out == msg
        assert list(out.fields) == list(msg.fields)
        assert list(out.info) == list(msg.info)

    def test_message_truncation_raises(self):
        blob = encode_message(ServeMessage("hello", "p0"))
        for cut in range(len(blob)):
            with pytest.raises(WireFormatError):
                decode_message(blob[:cut])


class TestStreamDecoder:
    FRAMES = [b"a" * 3, b"b" * 17, b"c" * 1]
    STREAM = b"".join(encode_stream_frame(f) for f in FRAMES)

    def test_byte_at_a_time(self):
        decoder = StreamDecoder()
        out = []
        for i in range(len(self.STREAM)):
            out.extend(decoder.feed(self.STREAM[i:i + 1]))
        assert out == self.FRAMES
        assert decoder.n_frames == len(self.FRAMES)
        assert decoder.pending_bytes == 0
        decoder.finish()

    @settings(max_examples=100, deadline=None)
    @given(cuts=st.lists(st.integers(min_value=0,
                                     max_value=len(STREAM)),
                         max_size=8))
    def test_any_chunking_yields_identical_frames(self, cuts):
        # Satellite property: TCP may fragment the stream anywhere;
        # the decoder's output must not depend on chunk boundaries.
        bounds = sorted(set(cuts) | {0, len(self.STREAM)})
        decoder = StreamDecoder()
        out = []
        for lo, hi in zip(bounds, bounds[1:]):
            out.extend(decoder.feed(self.STREAM[lo:hi]))
        assert out == self.FRAMES
        decoder.finish()

    def test_zero_length_frame_raises(self):
        with pytest.raises(WireFormatError, match="zero-length"):
            StreamDecoder().feed(b"\x00\x00\x00\x00")

    def test_oversized_frame_rejected_from_prefix_alone(self):
        decoder = StreamDecoder(max_frame_bytes=8)
        with pytest.raises(WireFormatError, match="bound"):
            # Only the 4-byte prefix arrives — no body needed.
            decoder.feed(b"\xff\x00\x00\x00")

    def test_finish_mid_frame_raises(self):
        decoder = StreamDecoder()
        decoder.feed(self.STREAM[:5])
        with pytest.raises(WireFormatError, match="mid-frame"):
            decoder.finish()

    def test_empty_frame_cannot_be_encoded(self):
        with pytest.raises(WireFormatError):
            encode_stream_frame(b"")


PACKET_STREAM = encode_packets(_telemetry_packets(3, "fz"))


class TestPacketStreamTruncation:
    @settings(max_examples=200, deadline=None)
    @given(cut=st.integers(min_value=0,
                           max_value=len(PACKET_STREAM) - 1))
    def test_every_truncation_raises(self, cut):
        # The count header promises 3 packets, so *every* strict
        # prefix must fail loudly — no silent short reads.
        with pytest.raises(WireFormatError):
            decode_packets(PACKET_STREAM[:cut])

    def test_full_stream_decodes(self):
        assert len(decode_packets(PACKET_STREAM)) == 3
