"""Fig. 1 — bandwidth/energy vs. on-node abstraction level.

The paper's Fig. 1 is qualitative: raising the abstraction of the
transmitted data (raw -> compressed -> delineated features -> beat classes
-> alarms) lowers the bandwidth and hence the node energy.  This bench
quantifies every rung with the shared radio/MCU/front-end models and
asserts the monotone collapse, including the thesis that the *added* DSP
energy is repaid many times over by the radio savings.
"""

from __future__ import annotations

from conftest import print_table
from repro.power import AbstractionLadder, Battery, LADDER_LEVELS


def run_ladder():
    ladder = AbstractionLadder()
    battery = Battery()
    rows = []
    for rung in ladder.table():
        rows.append((rung.level, rung.bandwidth_bps,
                     rung.processing_cycles_per_s / 1e3,
                     1e6 * rung.radio_energy_w,
                     1e6 * rung.processing_energy_w,
                     1e3 * rung.total_power_w,
                     battery.lifetime_days(rung.total_power_w)))
    return rows


def test_fig1_abstraction_ladder(benchmark):
    rows = benchmark.pedantic(run_ladder, rounds=1, iterations=1)
    print_table("Fig. 1: transmitted-data abstraction ladder "
                "(3-lead, 250 Hz, 12-bit)",
                ["level", "bw [bps]", "DSP [kcyc/s]", "radio [uW]",
                 "proc [uW]", "total [mW]", "battery [days]"], rows)

    bandwidth = [row[1] for row in rows]
    totals = [row[5] for row in rows]
    # Bandwidth collapses monotonically up to the beat-class level.
    assert all(a > b for a, b in zip(bandwidth[:4], bandwidth[1:4]))
    # Total power follows.
    assert all(a > b for a, b in zip(totals[:4], totals[1:4]))
    # Raw streaming to alarms: more than an order of magnitude.
    assert totals[0] > 10 * totals[-1]
    # DSP effort rises with abstraction yet total power still falls.
    dsp = [row[2] for row in rows]
    assert dsp[-1] > dsp[0]
    assert LADDER_LEVELS[0] == rows[0][0]
