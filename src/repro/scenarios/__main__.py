"""CLI: ``python -m repro.scenarios`` — run a (resumable) campaign.

Runs a scenario grid over a reproducible cohort and prints the
campaign table.  With ``--journal-dir`` every scenario's gateway
traffic is journaled to crash-safe segments, which unlocks the stage
checkpoints: ``--stop-after`` ends the run early and ``--start-from``
resumes a later run by *replaying* the already-journaled scenarios
instead of re-simulating them (byte-identical by the journal replay
contract — see ``docs/journal.md``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .campaign import CampaignConfig, CampaignRunner
from .spec import default_grid, governed_grid


def main(argv: list[str] | None = None) -> int:
    """Parse the CLI, run (or resume) the campaign, emit the report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Scenario campaign runner with journal-backed "
                    "stage checkpoints (see docs/journal.md)")
    parser.add_argument("--patients", type=int, default=8,
                        help="cohort size incl. sentinels (default 8)")
    parser.add_argument("--sentinels", type=int, default=1,
                        help="clean-AF sentinel patients (default 1)")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="seconds simulated per patient (default 60)")
    parser.add_argument("--seed", type=int, default=2014,
                        help="campaign master seed (default 2014)")
    parser.add_argument("--gateway-n-iter", type=int, default=80,
                        help="gateway FISTA iteration budget (default 80)")
    parser.add_argument("--grid", choices=("default", "governed"),
                        default="default",
                        help="scenario grid to sweep (default: default)")
    parser.add_argument("--scenarios", default=None,
                        help="comma-separated subset of the grid "
                             "(grid order preserved; default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list the grid's scenario names and exit")
    parser.add_argument("--journal-dir", default=None,
                        help="journal every scenario's gateway traffic "
                             "here (enables --start-from/--stop-after)")
    parser.add_argument("--start-from", default=None, metavar="NAME",
                        help="first scenario to simulate; earlier ones "
                             "replay from --journal-dir segments")
    parser.add_argument("--stop-after", default=None, metavar="NAME",
                        help="stop after this scenario completes")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the report JSON to this file")
    args = parser.parse_args(argv)

    make_grid = governed_grid if args.grid == "governed" else default_grid
    grid = make_grid(args.duration)
    if args.list:
        for spec in grid:
            print(f"{spec.name:<16} {spec.description}")
        return 0
    if args.scenarios:
        wanted = [name.strip() for name in args.scenarios.split(",")
                  if name.strip()]
        known = {spec.name for spec in grid}
        unknown = [name for name in wanted if name not in known]
        if unknown:
            parser.error(f"unknown scenarios {unknown}; grid has "
                         f"{sorted(known)}")
        grid = tuple(spec for spec in grid if spec.name in wanted)

    config = CampaignConfig(
        n_patients=args.patients,
        n_sentinels=args.sentinels,
        duration_s=args.duration,
        master_seed=args.seed,
        gateway_n_iter=args.gateway_n_iter,
        governed=args.grid == "governed",
        journal_dir=args.journal_dir,
    )
    report = CampaignRunner(grid, config).run(
        start_from=args.start_from, stop_after=args.stop_after)
    print(report.describe())
    if args.out is not None:
        args.out.write_text(report.to_json() + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
