"""Network-native fleet gateway service: nodes as TCP clients.

Everything below :mod:`repro.fleet.sharding` still runs the node *and*
the gateway in one address space — the wire codec proves packets could
cross a socket, but nothing actually does.  This module closes that
gap: :class:`FleetGatewayServer` is an asyncio TCP server whose clients
are patient nodes (:class:`~repro.fleet.client.FleetClient`) streaming
length-delimited wire frames, and :func:`run_served_fleet` drives a
whole cohort through real loopback sockets to a
:class:`~repro.fleet.FleetSummary` that is **byte-identical**
(``to_json``) to the in-process engine's.

Architecture (one connection, left to right)::

    client ──TCP──> reader task ──bounded queue──> consumer task
                                                        │
                                         run_in_executor(session lane)
                                                        │
                                       _PatientSession: Gateway +
                                       TriageBoard + EventKernel

* **Framing** — the byte stream is u32-length-delimited
  (:func:`~repro.fleet.wire.encode_stream_frame`); each frame body is
  either a packet (:data:`~repro.fleet.wire.WIRE_MAGIC`) or a control
  message (:data:`~repro.fleet.wire.MESSAGE_MAGIC`), routed by
  :func:`~repro.fleet.wire.frame_kind`.
* **Backpressure** — each connection's frames flow through a bounded
  :class:`asyncio.Queue`; when it fills, the reader task stops reading
  and the kernel's TCP window does the rest.  A slow consumer delays
  the client, it never loses frames.
* **Load balancing** — sessions are striped round-robin over
  ``n_lanes`` single-thread executors, so gateway reconstruction for
  different patients runs concurrently while each session stays
  strictly ordered.
* **Closed loop** — every ``sweep`` command returns a ``feedback``
  downlink carrying the patient's post-sweep triage state, operating
  mode and alert count; the client mirrors it into its local board,
  which is exactly what the governor reads next tick (the same
  one-tick feedback latency as the in-process scheduler).

Protocol verbs (all :class:`~repro.fleet.wire.ServeMessage`):

=============  ==========================================================
uplink         ``hello`` (handshake, first frame), packet frames,
               ``expire`` / ``drain`` / ``sweep`` / ``flush`` /
               ``period`` (scheduler phases), ``report`` (end-of-run
               row), ``bye``
downlink       ``hello-ack`` (``resumed`` flag), ``feedback``,
               ``report-ack``, ``error``
=============  ==========================================================

Sessions are keyed by patient id and **outlive their sockets**: a
client that reconnects resumes its gateway channel, reassembly window
and triage machine mid-stream (``hello-ack`` says ``resumed=1``), and a
second live connection for the same patient is rejected with an
``error`` downlink.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from ..classification.afib import AfDetector
from ..obs import Observability, SCOPE_SERVE
from .cohort import PatientProfile
from .gateway import GatewayConfig
from .journal import GatewaySession, JournalConfig, JournalWriter, \
    journal_meta
from .node_proxy import NodeProxyConfig
from .scheduler import SchedulerConfig
from .sharding import ShardHookFactory, ShardHooks, ShardPatientRow, \
    merge_patient_rows
from .triage import FleetSummary
from .wire import (
    MAX_FRAME_BYTES,
    ServeMessage,
    StreamDecoder,
    WireFormatError,
    decode_message,
    encode_message,
    encode_stream_frame,
    frame_kind,
)

#: Socket read size of the server's reader tasks and the client
#: transport (one TCP segment's worth; framing handles the rest).
RECV_CHUNK = 65536


class ServeError(RuntimeError):
    """A serving-protocol violation or transport failure."""


@dataclass(frozen=True)
class ServeConfig:
    """Gateway-service parameters (frozen, picklable, validated).

    Attributes:
        host: Interface the server binds.
        port: TCP port (``0`` = ephemeral; read the bound port off
            :attr:`FleetGatewayServer.port`).
        n_lanes: Single-thread session executors the load balancer
            stripes patients over (per-session ordering is preserved;
            distinct lanes run concurrently).
        queue_capacity: Bounded per-connection frame queue between the
            socket reader and the session consumer — the backpressure
            knob: a full queue stops the reader, which stalls the
            client through TCP flow control instead of dropping.
        max_frame_bytes: Per-frame byte ceiling of the stream decoder
            (rejected from the length prefix alone).
        throttle_s: Artificial per-frame processing delay — ``0`` in
            production; tests raise it to saturate the bounded queue
            and prove the no-loss backpressure path.
        gateway: Gateway parameters every patient session runs with.
        journal: When given, the server opens one shared
            :class:`~repro.fleet.journal.JournalWriter` and every
            session logs its ingested packet frames and state-bearing
            commands there — across reconnects, each frame exactly
            once.  The merged log replays byte-identical to the served
            run (see :mod:`repro.fleet.journal`).
    """

    host: str = "127.0.0.1"
    port: int = 0
    n_lanes: int = 2
    queue_capacity: int = 64
    max_frame_bytes: int = MAX_FRAME_BYTES
    throttle_s: float = 0.0
    gateway: GatewayConfig = field(default_factory=GatewayConfig)
    journal: JournalConfig | None = None

    def __post_init__(self) -> None:
        """Reject unusable parameters up front."""
        if not self.host:
            raise ValueError("host must not be empty")
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port {self.port} outside [0, 65535]")
        if self.n_lanes < 1:
            raise ValueError("n_lanes must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_frame_bytes < 4096:
            raise ValueError("max_frame_bytes must be >= 4096 (a frame "
                             "must fit one telemetry packet)")
        if not math.isfinite(self.throttle_s) or self.throttle_s < 0:
            raise ValueError("throttle_s must be finite and >= 0")


class _ServeMetrics:
    """Pre-resolved serve-scope metric families (deployment-shaped)."""

    def __init__(self, obs: Observability) -> None:
        metrics = obs.metrics
        self.connections = metrics.counter(
            "serve_connections_total",
            "Gateway-service connection lifecycle events "
            "(open / resumed / rejected / closed).", scope=SCOPE_SERVE)
        self.frames = metrics.counter(
            "serve_frames_total",
            "Stream frames consumed off client connections, by kind.",
            scope=SCOPE_SERVE)
        self.queue_depth = metrics.gauge(
            "serve_queue_depth",
            "High-water frame-queue depth per patient connection.",
            scope=SCOPE_SERVE)


class _PatientSession(GatewaySession):
    """Server-side state of one patient: gateway, triage, virtual clock.

    The state machine itself lives in
    :class:`~repro.fleet.journal.GatewaySession` — it replays the exact
    call sequence the in-process scheduler would make on a local
    gateway/board pair, driven by the client's command stream, and the
    journal replayer drives the identical class from a log.  This
    subclass adds only the serving concerns: the lane executor the
    session is pinned to, and the (optional) shared journal writer.
    The per-session :class:`~repro.fleet.kernel.EventKernel` pins every
    timed command to the session's virtual clock, so its
    no-time-travel guard enforces monotone command order across the
    whole connection — and across reconnects, because the session
    outlives the socket.
    """

    def __init__(self, patient_id: str, config: ServeConfig,
                 lane: ThreadPoolExecutor,
                 journal: JournalWriter | None = None) -> None:
        super().__init__(patient_id, config.gateway, journal=journal)
        self.lane = lane


class FleetGatewayServer:
    """Asyncio TCP gateway server with per-patient sessions.

    Runs its event loop on a background thread, so tests and drivers
    use it synchronously::

        with FleetGatewayServer(ServeConfig()) as server:
            client = FleetClient("127.0.0.1", server.port)
            ...
        summary = merge_patient_rows(cohort, server.rows(), ...)

    Args:
        config: Service parameters (fresh defaults if omitted).
        obs: Optional observability bundle; connection lifecycle,
            frame counts and queue high-water marks land in the
            ``serve`` scope (excluded from the canonical fleet
            snapshot, like shard-local gauges).
    """

    def __init__(self, config: ServeConfig | None = None,
                 obs: Observability | None = None) -> None:
        self.config = config or ServeConfig()
        self.obs = obs
        self._m = _ServeMetrics(obs) if obs is not None else None
        #: Patient sessions, persisting across disconnects.
        self.sessions: dict[str, _PatientSession] = {}
        #: Highest frame-queue depth observed on any connection.
        self.max_queue_depth = 0
        #: Highest partial-frame byte count buffered by any
        #: connection's stream decoder (frames split across reads).
        self.max_partial_bytes = 0
        #: Shared journal writer, open while the server runs (``None``
        #: without :attr:`ServeConfig.journal`).
        self.journal: JournalWriter | None = None
        self._counts: dict[str, int] = {}
        self._active: set[str] = set()
        self._lanes = [ThreadPoolExecutor(max_workers=1)
                       for _ in range(self.config.n_lanes)]
        self._next_lane = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop_event: asyncio.Event | None = None
        self._startup_error: BaseException | None = None
        self.port: int | None = None

    def start(self) -> "FleetGatewayServer":
        """Bind the listener and run the loop on a background thread."""
        if self._thread is not None:
            return self
        if self.config.journal is not None and self.journal is None:
            # The server knows its gateway parameters but not the
            # clients' schedule; a replayer of a served journal passes
            # duration/fs (and the cohort order) explicitly.
            self.journal = JournalWriter(
                self.config.journal,
                meta=journal_meta(gateway=self.config.gateway),
                obs=self.obs, resume=False)
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop, args=(ready,), daemon=True,
            name="fleet-serve")
        self._thread.start()
        ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Close the listener, drain tasks and shut the lanes down."""
        if self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join()
        self._thread = None
        for lane in self._lanes:
            lane.shutdown(wait=True)
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "FleetGatewayServer":
        """Start on entry (no-op when already running)."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop on exit."""
        self.stop()

    def rows(self) -> dict[str, ShardPatientRow]:
        """Completed per-patient rows (sessions that sent ``report``)."""
        return {pid: session.row
                for pid, session in self.sessions.items()
                if session.row is not None}

    @property
    def dropped(self) -> int:
        """Bounded-gateway-queue drops summed across every session."""
        return sum(s.gateway.dropped for s in self.sessions.values())

    def stats(self) -> dict:
        """JSON-safe service counters (connections, frames, queues)."""
        stats = {
            "connections": dict(sorted(self._counts.items())),
            "sessions": len(self.sessions),
            "frames": sum(s.n_frames for s in self.sessions.values()),
            "max_queue_depth": self.max_queue_depth,
            "max_partial_bytes": self.max_partial_bytes,
            "n_lanes": len(self._lanes),
        }
        if self.journal is not None:
            stats["journal"] = self.journal.stats()
        return stats

    def _run_loop(self, ready: threading.Event) -> None:
        """Background thread body: bind, serve, tear down."""
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._stop_event = asyncio.Event()
        try:
            server = loop.run_until_complete(asyncio.start_server(
                self._handle_conn, self.config.host, self.config.port))
            self.port = server.sockets[0].getsockname()[1]
        except OSError as exc:
            self._startup_error = exc
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_until_complete(self._stop_event.wait())
            server.close()
            loop.run_until_complete(server.wait_closed())
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
        finally:
            loop.close()

    def _count(self, event: str) -> None:
        """Account one connection lifecycle event (loop thread only)."""
        self._counts[event] = self._counts.get(event, 0) + 1
        if self._m is not None:
            self._m.connections.inc(event=event)

    def _session_for(self, patient_id: str) -> tuple[_PatientSession, bool]:
        """The (resumed or newly created) session of one patient."""
        session = self.sessions.get(patient_id)
        if session is not None:
            return session, True
        lane = self._lanes[self._next_lane % len(self._lanes)]
        self._next_lane += 1
        session = _PatientSession(patient_id, self.config, lane,
                                  journal=self.journal)
        self.sessions[patient_id] = session
        return session, False

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        """One connection: handshake, then the reader/consumer pipeline.

        Swallows the shutdown ``CancelledError`` so the handler task
        always finishes clean: ``asyncio.streams`` probes it with
        ``task.exception()`` from a done-callback, which would re-raise
        a cancellation into the event loop's exception handler.
        """
        try:
            await self._serve_conn(reader, writer)
        except asyncio.CancelledError:
            pass

    async def _serve_conn(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """`_handle_conn` body, cancellable at any await."""
        decoder = StreamDecoder(self.config.max_frame_bytes)
        try:
            hello, backlog = await self._read_hello(reader, decoder)
        except (WireFormatError, ServeError, ConnectionError):
            self._count("rejected")
            writer.close()
            return
        pid = hello.patient_id
        if pid in self._active:
            self._count("rejected")
            await self._send(writer, ServeMessage(
                "error", pid,
                info={"error": f"duplicate connection for {pid!r}"}))
            writer.close()
            return
        self._active.add(pid)
        session, resumed = self._session_for(pid)
        self._count("resumed" if resumed else "open")
        await self._send(writer, ServeMessage(
            "hello-ack", pid, info={"resumed": "1" if resumed else "0"}))
        queue: asyncio.Queue = asyncio.Queue(
            maxsize=self.config.queue_capacity)
        pump = asyncio.ensure_future(
            self._pump(reader, decoder, backlog, queue, pid))
        try:
            await self._consume(queue, writer, session)
        finally:
            # Synchronous bookkeeping first: a shutdown cancellation
            # arriving at either await below must not skip the close
            # accounting, or two identical runs disagree on counters.
            self._active.discard(pid)
            self._count("closed")
            pump.cancel()
            try:
                await pump
            except (asyncio.CancelledError, Exception):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_hello(self, reader: asyncio.StreamReader,
                          decoder: StreamDecoder,
                          ) -> tuple[ServeMessage, list[bytes]]:
        """Require the connection's first frame to be ``hello``.

        Returns the handshake and any frames the client pipelined into
        the same chunks (handed to the queue pump untouched).
        """
        while True:
            chunk = await reader.read(RECV_CHUNK)
            if not chunk:
                raise ConnectionError("peer closed before hello")
            frames = decoder.feed(chunk)
            self._note_partial(decoder)
            if not frames:
                continue
            # feed() returns views into the decoder's per-feed buffer;
            # the hello is decoded right here, but the backlog outlives
            # the next feed, so it crosses the boundary as bytes.
            first, backlog = frames[0], [bytes(f) for f in frames[1:]]
            if frame_kind(first) != "message":
                raise ServeError("first frame must be a hello message")
            msg = decode_message(first)
            if msg.kind != "hello":
                raise ServeError(f"expected hello, got {msg.kind!r}")
            return msg, backlog

    async def _pump(self, reader: asyncio.StreamReader,
                    decoder: StreamDecoder, backlog: list[bytes],
                    queue: asyncio.Queue, pid: str) -> None:
        """Reader task: socket bytes -> frames -> the bounded queue.

        ``await queue.put`` on a full queue suspends this task, which
        stops the socket reads — backpressure propagates to the client
        through TCP flow control with zero frame loss.
        """
        try:
            for body in backlog:
                await queue.put(body)
                self._note_depth(queue, pid)
            while True:
                chunk = await reader.read(RECV_CHUNK)
                if not chunk:
                    break
                frames = decoder.feed(chunk)
                self._note_partial(decoder)
                for body in frames:
                    # Queued frames outlive the next feed(): copy out
                    # of the decoder's per-feed buffer before handing
                    # them to the session lane.
                    await queue.put(bytes(body))
                    self._note_depth(queue, pid)
            await queue.put(None)
        except WireFormatError as exc:
            await queue.put(("error", str(exc)))

    def _note_depth(self, queue: asyncio.Queue, pid: str) -> None:
        """Track the per-connection queue high-water mark."""
        depth = queue.qsize()
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        if self._m is not None:
            self._m.queue_depth.set(float(depth), patient=pid)

    def _note_partial(self, decoder: StreamDecoder) -> None:
        """Track the partial-frame buffer high-water mark.

        :attr:`~repro.fleet.wire.StreamDecoder.pending_bytes` counts
        frame bytes buffered mid-frame after a feed — the same
        accounting the journal writer's record framing relies on, so a
        frame is journaled exactly once no matter how the socket
        chunks it.
        """
        pending = decoder.pending_bytes
        if pending > self.max_partial_bytes:
            self.max_partial_bytes = pending

    async def _consume(self, queue: asyncio.Queue,
                       writer: asyncio.StreamWriter,
                       session: _PatientSession) -> None:
        """Consumer task: frames -> the session's lane executor.

        ``handle_frame`` runs on the session's single-thread lane, so
        per-session ordering is strict while distinct lanes overlap.
        """
        loop = asyncio.get_running_loop()
        throttle = self.config.throttle_s
        while True:
            item = await queue.get()
            if item is None:
                return
            if isinstance(item, tuple):  # stream decode error
                await self._send(writer, ServeMessage(
                    "error", session.patient_id,
                    info={"error": item[1]}))
                return
            if throttle > 0:
                await asyncio.sleep(throttle)
            if self._m is not None:
                self._m.frames.inc(kind=frame_kind(item))
            replies, close = await loop.run_in_executor(
                session.lane, session.handle_frame, item)
            for body in replies:
                writer.write(encode_stream_frame(body))
            if replies:
                await writer.drain()
            if close:
                return

    @staticmethod
    async def _send(writer: asyncio.StreamWriter,
                    msg: ServeMessage) -> None:
        """Write one downlink message as a stream frame."""
        writer.write(encode_stream_frame(encode_message(msg)))
        await writer.drain()


def serve(config: ServeConfig | None = None,
          obs: Observability | None = None) -> FleetGatewayServer:
    """Start a gateway service and return the running server.

    The one-call entry point of the serving API::

        server = serve(ServeConfig(port=0))
        try:
            ...  # point FleetClients at server.port
        finally:
            server.stop()
    """
    return FleetGatewayServer(config, obs=obs).start()


@dataclass
class ServedFleetReport:
    """Outcome of one cohort run through real sockets.

    Attributes:
        summary: The merged fleet summary — byte-identical
            (:meth:`~repro.fleet.FleetSummary.to_json`) to the
            in-process engine's for the same cohort and seeds.
        packets_sent: Uplink packets offered across every client node.
        dropped_packets: Bounded-gateway-queue drops across sessions.
        rows: Per-patient rows in cohort order.
        timings_s: Wall-clock accounting (``total`` spans server start
            to merge).
        server_stats: The service's connection/frame counters.
    """

    summary: FleetSummary
    packets_sent: int
    dropped_packets: int
    rows: dict[str, ShardPatientRow] = field(default_factory=dict)
    timings_s: dict[str, float] = field(default_factory=dict)
    server_stats: dict = field(default_factory=dict)


def run_served_fleet(cohort: list[PatientProfile],
                     config: SchedulerConfig | None = None,
                     node_config: NodeProxyConfig | None = None,
                     gateway_config: GatewayConfig | None = None,
                     serve_config: ServeConfig | None = None,
                     master_seed: int = 2014,
                     hook_factory: ShardHookFactory | None = None,
                     af_detector: AfDetector | None = None,
                     client_workers: int | None = None,
                     obs: Observability | None = None,
                     ) -> ServedFleetReport:
    """Run a cohort through loopback TCP and merge one fleet summary.

    Spins up a :class:`FleetGatewayServer`, runs one
    :class:`~repro.fleet.client.FleetClient` per patient on a thread
    pool (concurrent connections, like a real ward), collects the
    per-patient rows off the server sessions and folds them with
    :func:`~repro.fleet.sharding.merge_patient_rows` — the same merge
    the sharded runtime uses, which is what makes the summary
    byte-identical to the in-process engine by construction.

    Args:
        cohort: Patient profiles in canonical (merge) order.
        config: Scheduler parameters each client node runs with.
        node_config: Uplink policy shared by every node.
        gateway_config: Gateway parameters of every server session
            (overrides ``serve_config.gateway`` when given).
        serve_config: Service parameters (fresh defaults if omitted).
        master_seed: Seed handed to the hook factory, per patient.
        hook_factory: Optional scenario wiring
            (:data:`~repro.fleet.sharding.ShardHookFactory`), called
            with each patient's single-profile stripe — randomness must
            derive from (master seed, patient id) exactly as under the
            sharded runtime.
        af_detector: Trained fleet AF detector shared by every client.
        client_workers: Concurrent client connections (default: cohort
            size, capped at 8).
        obs: Optional observability bundle for the **server** side.
    """
    from .client import FleetClient

    config = config or SchedulerConfig()
    node_config = node_config or NodeProxyConfig()
    serve_config = serve_config or ServeConfig()
    if gateway_config is not None:
        serve_config = replace(serve_config, gateway=gateway_config)
    t_start = time.perf_counter()
    with FleetGatewayServer(serve_config, obs=obs) as server:

        def run_one(profile: PatientProfile) -> None:
            hooks = (hook_factory([profile], master_seed)
                     if hook_factory is not None else ShardHooks())
            FleetClient(serve_config.host, server.port).run(
                profile, config=config, node_config=node_config,
                hooks=hooks, af_detector=af_detector)

        workers = client_workers or min(len(cohort), 8)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for future in [pool.submit(run_one, p) for p in cohort]:
                future.result()
    # Snapshot only after stop() has joined the loop thread: a client
    # returns as soon as its bye is on the wire, so reading counters
    # inside the `with` races the handler's own teardown accounting.
    rows = server.rows()
    dropped = server.dropped
    stats = server.stats()
    t_serve = time.perf_counter()
    summary = merge_patient_rows(
        cohort, rows, serve_config.gateway, config.duration_s,
        config.fs, dropped=dropped)
    t_end = time.perf_counter()
    return ServedFleetReport(
        summary=summary,
        packets_sent=sum(row.n_sent for row in rows.values()),
        dropped_packets=dropped,
        rows={p.patient_id: rows[p.patient_id] for p in cohort},
        timings_s={"serve": t_serve - t_start,
                   "merge": t_end - t_serve,
                   "total": t_end - t_start},
        server_stats=stats)
