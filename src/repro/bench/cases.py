"""The registered bench cases: one per legacy benchmark module.

Each workload is a standardized, seeded slice of the experiment its
``benchmarks/`` module runs under pytest: the same code paths and
corpora families, sized so the ``--quick`` grid finishes in CI seconds
while the full grid stays close to the pytest workload.  Quality numbers
(SNR, sensitivity, ...) ride along in the emitted metrics so a perf
regression that comes from *cutting corners* is visible next to the
speedup that caused it.
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from ..classification import (
    AF_LABEL,
    AfDetector,
    HeartbeatClassifier,
    corpus_beat_dataset,
    evaluate_classification,
    train_test_split,
)
from ..compression import (
    CsDecoder,
    CsEncoder,
    JointCsDecoder,
    MultiLeadCsEncoder,
    reconstruction_snr_db,
)
from ..delineation import (
    RPeakDetector,
    WaveletDelineator,
    evaluate_delineation,
    mmd_delineator_resources,
    wavelet_delineator_resources,
)
from ..filtering import ensemble_noise_reduction_db, tracking_gain_vs_ea
from ..fleet import (
    CohortConfig,
    FleetScheduler,
    Gateway,
    GatewayConfig,
    JournalConfig,
    JournalReplayer,
    JournalWriter,
    NodeProxyConfig,
    SchedulerConfig,
    ShardedFleetRunner,
    journal_meta,
    make_cohort,
    run_served_fleet,
)
from ..hwsim import compare_all
from ..multimodal import measure_pat
from ..obs import Observability
from ..power import (
    AbstractionLadder,
    Battery,
    ModePowerTable,
    NodeEnergyModel,
    best_admissible_static_cohort,
    compare_policies,
    figure6_breakdowns,
    mixed_acuity_trace,
)
from ..scenarios import CampaignConfig, CampaignRunner, default_grid
from ..signals import RecordSpec, make_corpus, make_record, synthesize_ppg
from .registry import BenchContext, register

FS = 250.0


@register("fig1-abstraction-ladder",
          "Fig. 1 bandwidth/energy ladder over all abstraction rungs",
          legacy="test_fig1_abstraction_ladder", tags=("figure",))
def fig1_abstraction_ladder(ctx: BenchContext) -> dict:
    """Walk every abstraction rung of the Fig. 1 ladder once."""
    ladder = AbstractionLadder()
    battery = Battery()
    rungs = ladder.table()
    totals = [rung.total_power_w for rung in rungs]
    return {
        "rungs": len(rungs),
        "raw_to_alarm_power_ratio": totals[0] / totals[-1],
        "alarm_battery_days": battery.lifetime_days(totals[-1]),
    }


@register("fig5-cs-snr",
          "Fig. 5 SL vs ML reconstruction-SNR sweep over CR",
          legacy="test_fig5_cs_snr", tags=("figure",))
def fig5_cs_snr(ctx: BenchContext) -> dict:
    """Sweep CR and score SL vs joint ML reconstruction SNR (Fig. 5)."""
    window = 512
    crs = (50.0, 70.0) if ctx.quick else (40.0, 55.0, 70.0, 85.0)
    n_records = 1 if ctx.quick else 2
    windows_per_record = 3 if ctx.quick else 6
    corpus = make_corpus("cs_eval", n_records=n_records, duration_s=30.0,
                         seed=ctx.seed)
    segments = []
    for record in corpus:
        sig = record.signals
        for w in range(windows_per_record):
            lo = 500 + w * window
            segments.append(sig[:, lo:lo + window])
    sl_last = ml_last = float("nan")
    for cr in crs:
        sl_encoder = CsEncoder(n=window, cr_percent=cr, seed=3)
        sl_decoder = CsDecoder(sl_encoder.sensing)
        ml_encoder = MultiLeadCsEncoder(n_leads=3, n=window,
                                        cr_percent=cr, seed=100)
        ml_decoder = JointCsDecoder(ml_encoder.sensing_matrices)
        sl_values = [reconstruction_snr_db(
            seg[1], sl_decoder.recover(sl_encoder.encode(seg[1])).window)
            for seg in segments]
        ml_frames = [ml_encoder.encode(seg) for seg in segments]
        ml_values = [
            float(np.mean([reconstruction_snr_db(seg[lead],
                                                 rec.windows[lead])
                           for lead in range(3)]))
            for seg, rec in zip(segments,
                                ml_decoder.recover_batch(ml_frames))]
        sl_last, ml_last = (float(np.mean(sl_values)),
                            float(np.mean(ml_values)))
    return {
        "samples": len(segments) * window * len(crs),
        "windows": len(segments) * len(crs),
        "sl_snr_db_at_max_cr": sl_last,
        "ml_snr_db_at_max_cr": ml_last,
    }


@register("fig6-energy-breakdown",
          "Fig. 6 node energy bars (no-comp vs SL-CS vs ML-CS)",
          legacy="test_fig6_energy_breakdown", tags=("figure",))
def fig6_energy_breakdown(ctx: BenchContext) -> dict:
    """Price the three Fig. 6 transmission strategies."""
    model = NodeEnergyModel()
    bars = figure6_breakdowns(50.0, 63.0)
    return {
        "sl_reduction_percent": model.power_reduction_percent(
            bars["single_lead_cs"], bars["no_comp_1lead"]),
        "ml_reduction_percent": model.power_reduction_percent(
            bars["multi_lead_cs"], bars["no_comp"]),
    }


@register("fig7-multicore-power",
          "Fig. 7 SC vs MC cycle-accurate power decomposition",
          legacy="test_fig7_multicore_power", tags=("figure",))
def fig7_multicore_power(ctx: BenchContext) -> dict:
    """Run the cycle-accurate SC vs MC kernel comparison (Fig. 7)."""
    corpus = make_corpus("nsr", n_records=1, duration_s=20.0, seed=77)
    record = corpus.records[0]
    block = record.signals[:, 500:750]
    beat = record.lead(1).beat_window(record.beats[3])
    comparisons = compare_all(block, beat, record.fs)
    return {
        "samples": block.shape[0] * block.shape[1],
        "apps": len(comparisons),
        "max_mc_savings_percent": max(cmp.savings_percent
                                      for cmp in comparisons),
    }


@register("t1-delineation-accuracy",
          "T1 wavelet delineation Se/PPV over an NSR corpus",
          legacy="test_t1_delineation_accuracy", tags=("table",))
def t1_delineation_accuracy(ctx: BenchContext) -> dict:
    """Delineate an NSR corpus and score beat sensitivity (T1)."""
    n_records = 2 if ctx.quick else 6
    duration = 30.0 if ctx.quick else 60.0
    corpus = make_corpus("nsr", n_records=n_records, duration_s=duration,
                         seed=77)
    n_samples = 0
    sensitivities = []
    for record in corpus:
        ecg = record.lead(1)
        n_samples += ecg.signal.shape[0]
        peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
        detected = WaveletDelineator(ecg.fs).delineate(ecg.signal, peaks)
        report = evaluate_delineation(ecg.beats, detected, ecg.fs)
        sensitivities.append(report.beat_sensitivity)
    return {
        "samples": n_samples,
        "records": n_records,
        "beat_sensitivity": float(np.mean(sensitivities)),
    }


@register("t2-delineation-resources",
          "T2 delineator duty-cycle/memory footprint estimates",
          legacy="test_t2_delineation_resources", tags=("table",))
def t2_delineation_resources(ctx: BenchContext) -> dict:
    """Estimate delineator duty-cycle/memory footprints (T2)."""
    wavelet = wavelet_delineator_resources(fs=FS)
    mmd = mmd_delineator_resources(fs=FS)
    return {
        "wavelet_duty_percent": 100 * wavelet.duty_cycle,
        "wavelet_memory_kb": wavelet.memory_kb,
        "mmd_cycles_per_sample": mmd.cycles_per_sample,
    }


@register("t3-af-detection",
          "T3 AF detector train + held-out evaluation",
          legacy="test_t3_af_detection", tags=("table",))
def t3_af_detection(ctx: BenchContext) -> dict:
    """Train the AF detector and evaluate on held-out records (T3)."""
    n_records = 2 if ctx.quick else 4
    duration = 60.0 if ctx.quick else 120.0
    train = make_corpus("af_mix", n_records=n_records,
                        duration_s=duration, seed=1)
    test = make_corpus("af_mix", n_records=n_records,
                       duration_s=duration, seed=2)
    detector = AfDetector().fit(list(train))
    report = detector.evaluate(list(test))
    return {
        "samples": int(2 * n_records * duration * FS),
        "sensitivity": report.sensitivity(AF_LABEL),
        "specificity": report.specificity(AF_LABEL),
    }


@register("t4-rp-classification",
          "T4 random-projection heartbeat classifier design point",
          legacy="test_t4_rp_classification", tags=("table",))
def t4_rp_classification(ctx: BenchContext) -> dict:
    """Fit and score the random-projection beat classifier (T4)."""
    n_records = 3 if ctx.quick else 6
    corpus = make_corpus("ectopy", n_records=n_records, duration_s=60.0,
                         seed=42)
    X, y = corpus_beat_dataset(corpus, rr_features=True)
    Xtr, ytr, Xte, yte = train_test_split(X, y, test_fraction=0.4, seed=5)
    clf = HeartbeatClassifier(window=X.shape[1] - 2,
                              projection_kind="ternary",
                              membership="pwl",
                              extra_features=2).fit(Xtr, ytr)
    report = evaluate_classification(yte, clf.predict(Xte))
    return {
        "beats": int(X.shape[0]),
        "accuracy": report.accuracy,
        "pvc_sensitivity": report.sensitivity("V"),
    }


@register("t5-multimodal-filtering",
          "T5 beat-locked filtering + PAT multimodal chain",
          legacy="test_t5_multimodal_filtering", tags=("table",))
def t5_multimodal_filtering(ctx: BenchContext) -> dict:
    """Run beat-locked filtering plus the PAT chain (T5)."""
    rng = np.random.default_rng(17)
    n_beats, period = (40, 100) if ctx.quick else (80, 100)
    n = (n_beats + 1) * period
    clean = np.zeros(n)
    impulses = np.arange(1, n_beats + 1) * period
    t = np.arange(-30, 30)
    pulse = np.exp(-0.5 * (t / 8.0) ** 2)
    for k, center in enumerate(impulses):
        clean[center - 30:center + 30] += (1.0 + 0.02 * k) * pulse
    noisy = clean + rng.normal(0.0, 0.15, n)
    ea_gain = ensemble_noise_reduction_db(noisy, clean, impulses, 30, 30)
    err_aicf, err_ea = tracking_gain_vs_ea(noisy, clean, impulses, 30, 30,
                                           mu=0.2)
    record = make_record(RecordSpec(name="pat", duration_s=30.0,
                                    snr_db=25.0, seed=5))
    ppg = synthesize_ppg(record, rng=np.random.default_rng(3))
    series = measure_pat(ppg, record.lead(1).r_peaks)
    return {
        "samples": n + record.n_samples,
        "ea_gain_db": ea_gain,
        "aicf_over_ea_rmse_ratio": err_aicf / err_ea,
        "pat_beats_matched": int(series.pat_s.shape[0]),
    }


@register("fleet-throughput",
          "End-to-end fleet run: nodes, batched CS uplink, gateway, triage",
          legacy="test_fleet_throughput", tags=("systems",))
def fleet_throughput(ctx: BenchContext) -> dict:
    """Drive a mid-size cohort end to end through the fleet stack."""
    n_patients = 4 if ctx.quick else 12
    duration = 60.0 if ctx.quick else 120.0
    cohort = make_cohort(CohortConfig(n_patients=n_patients, seed=7))
    scheduler = FleetScheduler(
        cohort,
        SchedulerConfig(duration_s=duration, fs=FS),
        node_config=NodeProxyConfig(stream_telemetry=False),
    )
    report = scheduler.run()
    return {
        "patients": n_patients,
        "samples": int(n_patients * duration * FS) * 3,
        "packets": report.packets_sent,
        "snr_p50_db": report.summary.snr_p50_db,
        "dropped": report.summary.dropped_packets,
    }


@register("fleet-throughput-sharded",
          "Sharded fleet run: 4 worker processes vs 1, byte-checked",
          legacy="test_fleet_throughput_sharded", tags=("systems",))
def fleet_throughput_sharded(ctx: BenchContext) -> dict:
    """Drive one cohort through 1-shard and 4-shard runs and compare.

    Times both layouts over the same cohort and **asserts** the merged
    summaries are byte-identical — a codec or determinism regression
    fails the bench (and therefore the CI quick gate), not just a unit
    test.  The 4-shard leg runs on the shared-memory transport where
    the platform has one (and additionally byte-checks the pickle
    backend against it), so the timing covers the zero-copy fabric:
    shard results travel as segment handles and merge without an
    unpickle copy, with the compiled FISTA drain
    (:mod:`repro.compression.fista_kernels`) behind reconstruction.
    The headline metric is the 4-process speedup over the
    single-process run; on the 1-core containers that record baselines
    it hovers near 1.0 — multi-core gates live in
    ``benchmarks/test_fleet_throughput_sharded.py``.
    """
    from repro.compression.fista_kernels import backend
    from repro.fleet.transport import SharedMemoryTransport

    n_patients = 6 if ctx.quick else 16
    duration = 60.0 if ctx.quick else 120.0
    cohort = make_cohort(CohortConfig(n_patients=n_patients, seed=7))
    kwargs = dict(
        config=SchedulerConfig(duration_s=duration, fs=FS),
        node_config=NodeProxyConfig(stream_telemetry=False),
        gateway_config=GatewayConfig(n_iter=80),
    )
    shm = SharedMemoryTransport.available()
    transport = "shared_memory" if shm else "pickle"
    single = ShardedFleetRunner(cohort, n_shards=1, **kwargs).run()
    sharded = ShardedFleetRunner(cohort, n_shards=4,
                                 transport=transport, **kwargs).run()
    if sharded.summary.to_json() != single.summary.to_json():
        raise AssertionError(
            "4-shard FleetSummary diverged from the 1-shard run — "
            "sharding determinism regression")
    if shm:
        pickled = ShardedFleetRunner(cohort, n_shards=4,
                                     transport="pickle", **kwargs).run()
        if pickled.summary.to_json() != sharded.summary.to_json():
            raise AssertionError(
                "pickle-transport summary diverged from shared memory "
                "— transport fabric regression")
    wall_single = single.timings_s["total"]
    wall_sharded = sharded.timings_s["total"]
    return {
        "patients": n_patients,
        "samples": int(n_patients * duration * FS) * 3 * 2,
        "packets": sharded.packets_sent,
        "byte_identical": True,
        "transport": transport,
        "fista_backend": backend(),
        "speedup_vs_single_process": wall_single / wall_sharded,
        "single_process_wall_s": wall_single,
        "sharded_wall_s": wall_sharded,
    }


@register("fleet-serve-throughput",
          "Cohort through the TCP gateway service vs in-process, "
          "byte-checked",
          legacy="test_fleet_serve_throughput", tags=("systems",))
def fleet_serve_throughput(ctx: BenchContext) -> dict:
    """Drive one cohort through real loopback sockets and compare.

    Times the same cohort through the in-process scheduler and through
    `repro.fleet.serve.run_served_fleet` (concurrent TCP clients, one
    per patient) and **asserts** the two merged summaries are
    byte-identical — a serving-protocol or framing regression fails
    the bench (and therefore the CI quick gate), not just a unit test.
    The headline metrics are the socket tax (served wall over
    in-process wall) and the served uplink rate in packets per second.
    """
    n_patients = 4 if ctx.quick else 8
    duration = 60.0 if ctx.quick else 120.0
    cohort = make_cohort(CohortConfig(n_patients=n_patients, seed=7))
    config = SchedulerConfig(duration_s=duration, fs=FS)
    node_config = NodeProxyConfig(stream_telemetry=False)
    gateway_config = GatewayConfig(n_iter=80)

    t0 = time.perf_counter()
    local = FleetScheduler(
        cohort, config, node_config=node_config,
        gateway=Gateway(gateway_config)).run()
    wall_local = time.perf_counter() - t0
    served = run_served_fleet(
        cohort, config=config, node_config=node_config,
        gateway_config=gateway_config)
    if served.summary.to_json() != local.summary.to_json():
        raise AssertionError(
            "served FleetSummary diverged from the in-process run — "
            "serving determinism regression")
    wall_served = served.timings_s["total"]
    return {
        "patients": n_patients,
        "samples": int(n_patients * duration * FS) * 3 * 2,
        "packets": served.packets_sent,
        "byte_identical": True,
        "served_packets_per_second": served.packets_sent / wall_served,
        "socket_tax_vs_in_process": wall_served / wall_local,
        "in_process_wall_s": wall_local,
        "served_wall_s": wall_served,
    }


#: Required journal-replay advantage over the recorded live run (5x).
MIN_REPLAY_SPEEDUP = 5.0


@register("fleet-journal-replay",
          "Journaled fleet run vs its journal replay, byte-checked",
          legacy="test_fleet_journal_replay", tags=("systems",))
def fleet_journal_replay(ctx: BenchContext) -> dict:
    """Record a live run to a journal, then replay it faster-than-live.

    Runs one cohort through the in-process scheduler twice — plain and
    with a `JournalWriter` attached — to price the journal write tax,
    then streams the journal back through `JournalReplayer` and
    **asserts** two contracts: the replayed `FleetSummary` must be
    byte-identical to the recorded run's (which must itself be
    byte-identical to the plain run's — journaling is out-of-band),
    and the replay must finish at least `MIN_REPLAY_SPEEDUP`x faster
    than the live run it reproduces (replay skips node-side synthesis
    entirely, so anything slower means the recovery path regressed).
    Either violation fails the bench — and the CI quick gate.
    """
    n_patients = 4 if ctx.quick else 8
    duration = 60.0 if ctx.quick else 120.0
    cohort = make_cohort(CohortConfig(n_patients=n_patients, seed=7))
    config = SchedulerConfig(duration_s=duration, fs=FS)
    node_config = NodeProxyConfig(stream_telemetry=True)
    gateway_config = GatewayConfig(n_iter=40)

    def live_run(journal=None):
        return FleetScheduler(
            cohort, config, node_config=node_config,
            gateway=Gateway(gateway_config), journal=journal).run()

    t0 = time.perf_counter()
    plain = live_run()
    wall_plain = time.perf_counter() - t0
    with tempfile.TemporaryDirectory() as tmp:
        journal_config = JournalConfig(dir=tmp, name="bench")
        t0 = time.perf_counter()
        with JournalWriter(
                journal_config,
                meta=journal_meta(duration, FS, gateway_config),
                resume=False) as journal:
            recorded = live_run(journal)
        wall_recorded = time.perf_counter() - t0
        journal_bytes = journal.n_bytes
        replay = JournalReplayer(journal_config).run()
    wall_replay = replay.timings_s["total"]
    if recorded.summary.to_json() != plain.summary.to_json():
        raise AssertionError(
            "journaled FleetSummary diverged from the plain run — "
            "the journal write tax is not out-of-band")
    if replay.summary.to_json() != recorded.summary.to_json():
        raise AssertionError(
            "replayed FleetSummary diverged from the recorded run — "
            "journal replay determinism regression")
    speedup = wall_recorded / wall_replay
    if speedup < MIN_REPLAY_SPEEDUP and not ctx.profiled:
        raise AssertionError(
            f"journal replay only {speedup:.1f}x faster than the live "
            f"run (bar: {MIN_REPLAY_SPEEDUP:.0f}x)")
    return {
        "patients": n_patients,
        "samples": int(n_patients * duration * FS) * 3 * 2,
        "packets": replay.n_packets,
        "records": replay.n_records,
        "journal_bytes": journal_bytes,
        "byte_identical": True,
        "write_tax_vs_plain": wall_recorded / wall_plain,
        "replay_speedup_vs_live": speedup,
        "live_wall_s": wall_recorded,
        "replay_wall_s": wall_replay,
    }


#: Allowed fleet-run slowdown with observability attached (5 %).
MAX_OBS_OVERHEAD = 0.05


@register("fleet-obs-overhead",
          "Fleet run with vs without observability, byte-checked",
          legacy="test_fleet_obs_overhead", tags=("systems",))
def fleet_obs_overhead(ctx: BenchContext) -> dict:
    """Time the fleet hot path with and without an obs bundle attached.

    Interleaves plain and observed runs over one cohort and **asserts**
    the out-of-band contract: the ``FleetSummary`` bytes must be
    identical with and without the bundle, the canonical fleet-scope
    obs snapshot must be byte-identical across observed runs (trace
    determinism), and the overhead ratio must stay within
    :data:`MAX_OBS_OVERHEAD`.  Any violation fails the bench — and
    therefore the CI quick gate — not just a unit test.

    The ratio is the *median of per-pair CPU-time ratios*: each
    back-to-back (plain, observed) pair shares machine state, so the
    pairwise ratio cancels the load drift that dwarfs the real
    overhead on shared runners, and the median damps the rest.  Pair
    order alternates so the second-run-is-warmer bias cancels too.
    Unusually for a bench case the full grid scales the *pair count*,
    not the workload: short runs keep each pair inside one machine
    state window, which is what makes the ratio tight.
    """
    n_pairs = 3 if ctx.quick else 5
    n_patients = 4
    duration = 40.0
    cohort = make_cohort(CohortConfig(n_patients=n_patients, seed=7))

    def run_once(obs: Observability | None):
        scheduler = FleetScheduler(
            cohort, SchedulerConfig(duration_s=duration, fs=FS),
            node_config=NodeProxyConfig(stream_telemetry=False),
            obs=obs)
        t0 = time.process_time()
        fleet = scheduler.run()
        return time.process_time() - t0, fleet

    run_once(None)  # warm caches outside both timed variants
    pair_ratios: list[float] = []
    plain_cpu: list[float] = []
    obs_cpu: list[float] = []
    summaries: set[str] = set()
    canonicals: set[str] = set()
    n_events = n_series = 0

    def measure_pairs(n: int) -> None:
        nonlocal n_events, n_series
        for i in range(n):
            obs = Observability()
            if i % 2:  # alternate order to cancel warm-up bias
                cpu_obs, fleet_obs = run_once(obs)
                cpu_plain, fleet_plain = run_once(None)
            else:
                cpu_plain, fleet_plain = run_once(None)
                cpu_obs, fleet_obs = run_once(obs)
            plain_cpu.append(cpu_plain)
            obs_cpu.append(cpu_obs)
            pair_ratios.append(cpu_obs / cpu_plain)
            summaries.add(fleet_plain.summary.to_json())
            summaries.add(fleet_obs.summary.to_json())
            canonicals.add(obs.canonical_json())
            n_events = len(obs.trace.events)
            n_series = len(obs.metrics.snapshot()["series"])

    def estimate() -> float:
        # Two consistent estimators of the true overhead: the median
        # pairwise ratio (robust to load spikes hitting single pairs)
        # and the ratio of pooled CPU totals (robust to one noisy
        # denominator inflating a pairwise ratio).  A real regression
        # inflates both; single-core scheduling jitter rarely does, so
        # the gate reads the smaller one.
        return min(float(np.median(pair_ratios)),
                   sum(obs_cpu) / sum(plain_cpu))

    measure_pairs(n_pairs)
    ratio = estimate()
    attempts = 0
    while ratio > 1.0 + MAX_OBS_OVERHEAD and attempts < 2:
        # Jitter on a shared runner can still dwarf the real overhead
        # at this workload size; confirm with more interleaved pairs
        # before calling it a regression.
        attempts += 1
        measure_pairs(n_pairs + 3)
        ratio = estimate()
    if len(summaries) != 1:
        raise AssertionError(
            "observability changed FleetSummary bytes — "
            "instrumentation is not out-of-band")
    if len(canonicals) != 1:
        raise AssertionError(
            "canonical obs snapshot varied across identical runs — "
            "trace determinism regression")
    # Under the profiler every Python call is surcharged, which
    # penalizes exactly the variant this case measures — only assert
    # the budget when the clock is honest.
    if ratio > 1.0 + MAX_OBS_OVERHEAD and not ctx.profiled:
        raise AssertionError(
            f"observability overhead {ratio:.3f}x exceeds the "
            f"{1.0 + MAX_OBS_OVERHEAD:.2f}x budget")
    return {
        "patients": n_patients,
        "samples": int(n_patients * duration * FS) * 3 * 2
        * len(plain_cpu),
        "overhead_ratio": ratio,
        "plain_cpu_s": float(np.median(plain_cpu)),
        "obs_cpu_s": float(np.median(obs_cpu)),
        "trace_events": n_events,
        "metric_series": n_series,
    }


#: Required kernel-event efficiency on the sparse cohort: the event
#: engine must process at least this many times fewer events than the
#: tick loop spends per-patient visits on the same virtual stretch.
MIN_EVENT_RATIO = 3.0


@register("fleet-event-kernel",
          "Event-heap kernel vs tick loop: byte-checked + sparse-cohort"
          " event efficiency",
          legacy="test_fleet_event_kernel", tags=("systems",))
def fleet_event_kernel(ctx: BenchContext) -> dict:
    """Benchmark the simulation kernel's two contracts at once.

    First the *lockstep façade*: one cohort runs under the legacy
    ``engine="ticks"`` loop and under ``engine="kernel"``, and the
    ``FleetSummary`` bytes must match exactly — a determinism
    regression fails the bench (and the CI quick gate), not just a
    unit test.  Then the *sparse cohort*: 90 % of the nodes are
    delineation-only, uplinking at 10x the base period; the kernel
    visits them only when they uplink, so its event count must be at
    least :data:`MIN_EVENT_RATIO` times smaller than the per-patient
    visits the tick loop would spend (``tick_loop_iterations``) — the
    ratio the BENCH artifact records.
    """
    from dataclasses import replace

    # --- lockstep façade: byte-equivalence under both engines -------
    eq_patients = 4 if ctx.quick else 8
    eq_duration = 60.0 if ctx.quick else 120.0
    cohort = make_cohort(CohortConfig(n_patients=eq_patients, seed=7))
    node_config = NodeProxyConfig(stream_telemetry=False)
    summaries = {}
    walls = {}
    for engine in ("ticks", "kernel"):
        scheduler = FleetScheduler(
            cohort,
            SchedulerConfig(duration_s=eq_duration, fs=FS,
                            engine=engine),
            node_config=node_config, obs=ctx.obs)
        report = scheduler.run()
        summaries[engine] = report.summary.to_json()
        walls[engine] = report.timings_s["uplink+gateway"]
    if summaries["kernel"] != summaries["ticks"]:
        raise AssertionError(
            "kernel lockstep façade diverged from the tick loop — "
            "simulation determinism regression")

    # --- sparse cohort: cost proportional to events, not ticks ------
    period = 20.0 if ctx.quick else 30.0
    n_patients = 24 if ctx.quick else 30
    n_dense = 2 if ctx.quick else 3
    duration = period * 10.0  # ten base ticks
    base = make_cohort(CohortConfig(n_patients=n_patients, seed=3))
    sparse_cohort = [
        p if i < n_dense else replace(p, uplink_period_s=duration)
        for i, p in enumerate(base)]
    scheduler = FleetScheduler(
        sparse_cohort,
        SchedulerConfig(duration_s=duration, fs=FS),
        node_config=NodeProxyConfig(excerpt_period_s=period,
                                    stream_telemetry=False),
        obs=ctx.obs)
    report = scheduler.run()
    stats = report.kernel_stats
    ratio = stats["tick_loop_iterations"] / stats["n_events"]
    if ratio < MIN_EVENT_RATIO:
        raise AssertionError(
            f"sparse cohort processed only {ratio:.2f}x fewer kernel "
            f"events than tick-loop iterations (need >= "
            f"{MIN_EVENT_RATIO}x): {stats}")
    if report.summary.stale_patients:
        raise AssertionError(
            "sparse nodes flagged stale — expected-period staleness "
            "accounting regression")
    return {
        "patients": eq_patients + n_patients,
        "samples": int((eq_patients * eq_duration * 2
                        + n_patients * duration) * FS) * 3,
        "byte_identical": True,
        "ticks_wall_s": walls["ticks"],
        "kernel_wall_s": walls["kernel"],
        "sparse_events": stats["n_events"],
        "tick_loop_iterations": stats["tick_loop_iterations"],
        "event_ratio": ratio,
        "sparse_packets": report.packets_sent,
    }


@register("fleet-lifetime",
          "Hours-to-empty per policy: EnergyGovernor vs static modes",
          legacy="test_fleet_lifetime", tags=("systems",))
def fleet_lifetime(ctx: BenchContext) -> dict:
    """Simulated battery lifetime of a mixed-acuity cohort per policy.

    For every patient the closed-loop governor and each static Fig. 6
    mode run the same deterministic daily acuity trace to end of
    discharge; the headline metric is the governor's lifetime over the
    best *admissible* static mode (one that never streams below its
    acuity floor).
    """
    n_patients = 3 if ctx.quick else 8
    step_s = 1200.0 if ctx.quick else 600.0
    horizon_s = (35 if ctx.quick else 40) * 86400.0
    table = ModePowerTable()
    cohort = [compare_policies(mixed_acuity_trace(i), table=table,
                               step_s=step_s, horizon_s=horizon_s)
              for i in range(n_patients)]
    hours: dict[str, list[float]] = {}
    steps = 0
    for results in cohort:
        for name, res in results.items():
            hours.setdefault(name, []).append(res.hours)
            steps += int(res.hours * 3600.0 / step_s)
    switches = [results["governor"].n_switches for results in cohort]
    mean_hours = {name: float(np.mean(values))
                  for name, values in hours.items()}
    best = best_admissible_static_cohort(cohort)
    return {
        "patients": n_patients,
        "samples": steps,
        "governor_hours": mean_hours["governor"],
        "best_static": best,
        "best_static_hours": mean_hours[best],
        "lifetime_gain": mean_hours["governor"] / mean_hours[best],
        "mean_switches": float(np.mean(switches)),
    }


@register("scenario-campaign",
          "Fault-injection campaign grid over a sentinel cohort",
          legacy="test_scenario_campaign", tags=("systems",))
def scenario_campaign(ctx: BenchContext) -> dict:
    """Sweep a sentinel cohort across the fault-injection grid."""
    n_patients = 5 if ctx.quick else 20
    grid = default_grid(60.0)
    if ctx.quick:
        grid = grid[:2]
    config = CampaignConfig(n_patients=n_patients, n_sentinels=2,
                            duration_s=60.0, master_seed=ctx.seed)
    report = CampaignRunner(grid, config).run()
    false_drop = max(res.sentinel_false_drop_rate
                     for res in report.results)
    return {
        "patients": n_patients * len(report.results),
        "samples": int(n_patients * len(report.results) * 60.0 * FS) * 3,
        "scenarios": len(report.results),
        "worst_sentinel_false_drop": false_drop,
    }
