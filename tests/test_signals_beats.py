"""Unit tests for repro.signals.beats (beat morphology models)."""

import numpy as np
import pytest

from repro.signals import (
    BEAT_AF,
    BEAT_APC,
    BEAT_NORMAL,
    BEAT_PVC,
    GAUSS_SUPPORT,
    af_beat,
    apc_beat,
    normal_beat,
    pvc_beat,
    template_for,
)
from repro.signals.beats import WaveShape


class TestWaveShape:
    def test_center_scales_with_rr(self):
        wave = WaveShape(amplitude=1.0, center_s=-0.17, width_s=0.02,
                         rr_scaling=1.0)
        assert wave.center_for_rr(0.5) == pytest.approx(-0.085)

    def test_center_fixed_when_no_scaling(self):
        wave = WaveShape(amplitude=1.0, center_s=0.026, width_s=0.01)
        assert wave.center_for_rr(0.5) == pytest.approx(0.026)

    def test_bazett_scaling(self):
        wave = WaveShape(amplitude=1.0, center_s=0.32, width_s=0.05,
                         rr_scaling=0.5)
        assert wave.center_for_rr(0.64) == pytest.approx(0.32 * 0.8)


class TestTemplates:
    def test_template_lookup_all_classes(self):
        for label in (BEAT_NORMAL, BEAT_PVC, BEAT_APC, BEAT_AF):
            assert template_for(label).label == label

    def test_template_lookup_unknown(self):
        with pytest.raises(KeyError, match="no beat template"):
            template_for("X")

    def test_normal_beat_r_dominates(self):
        t = np.linspace(-0.4, 0.6, 1001)
        beat = normal_beat().render(t, rr_s=0.8)
        assert t[np.argmax(beat)] == pytest.approx(0.0, abs=0.005)
        assert beat.max() == pytest.approx(1.0, rel=0.05)

    def test_pvc_has_no_p_wave(self):
        assert pvc_beat().p.amplitude == 0.0

    def test_af_beat_has_no_p_wave(self):
        assert af_beat().p.amplitude == 0.0

    def test_af_beat_keeps_normal_qrs(self):
        assert af_beat().r.amplitude == normal_beat().r.amplitude

    def test_pvc_qrs_wider_than_normal(self):
        assert pvc_beat().r.width_s > 2 * normal_beat().r.width_s

    def test_pvc_t_discordant(self):
        assert pvc_beat().t.amplitude < 0 < normal_beat().t.amplitude

    def test_apc_p_smaller_and_earlier(self):
        apc, normal = apc_beat(), normal_beat()
        assert abs(apc.p.amplitude) < abs(normal.p.amplitude)
        assert apc.p.center_s > normal.p.center_s  # closer to the QRS

    def test_scaled_template(self):
        scaled = normal_beat().scaled(0.5)
        assert scaled.r.amplitude == pytest.approx(0.5)
        assert scaled.p.amplitude == pytest.approx(0.075)

    def test_render_zero_amplitude_wave_contributes_nothing(self):
        # Far enough from the (wide) PVC QRS that only a P wave could
        # contribute — and the PVC has none.
        t = np.linspace(-0.30, -0.16, 141)
        assert np.allclose(pvc_beat().render(t, 0.8), 0.0, atol=1e-3)


class TestFiducials:
    def test_normal_fiducials_match_gaussian_support(self):
        fs = 250.0
        template = normal_beat()
        beat = template.fiducials(r_sample=1000, rr_s=0.8, fs=fs)
        assert beat.r_peak == 1000
        assert beat.qrs.peak == 1000
        expected_p_peak = 1000 + round(template.p.center_for_rr(0.8) * fs)
        assert beat.p_wave.peak == expected_p_peak
        half = GAUSS_SUPPORT * template.p.width_s * fs
        assert beat.p_wave.end - beat.p_wave.onset == pytest.approx(
            2 * half, abs=2)

    def test_qrs_spans_q_to_s(self):
        fs = 250.0
        template = normal_beat()
        beat = template.fiducials(1000, 0.8, fs)
        q_onset = (template.q.center_s - GAUSS_SUPPORT * template.q.width_s)
        s_end = (template.s.center_s + GAUSS_SUPPORT * template.s.width_s)
        assert beat.qrs.onset == 1000 + round(q_onset * fs)
        assert beat.qrs.end == 1000 + round(s_end * fs)

    def test_pvc_fiducials_have_absent_p(self):
        beat = pvc_beat().fiducials(500, 0.8, 250.0)
        assert not beat.p_wave.present
        assert beat.t_wave.present

    def test_t_wave_timing_stretches_with_rr(self):
        template = normal_beat()
        short = template.fiducials(1000, 0.5, 250.0)
        long = template.fiducials(1000, 1.2, 250.0)
        assert long.t_wave.peak > short.t_wave.peak

    def test_fiducials_label_matches_template(self):
        assert pvc_beat().fiducials(0, 0.8, 250.0).label == BEAT_PVC
