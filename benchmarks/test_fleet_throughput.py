"""Fleet throughput — patients/sec and uplink bytes/patient/day.

Not a paper figure: this benchmarks the `repro.fleet` layer the ROADMAP
grows toward (many nodes, one gateway).  It runs a mid-size cohort
end-to-end — synthesis, node pipeline, batched CS uplink, gateway
reconstruction, triage — and reports fleet throughput plus the per-
patient bandwidth that the §V transmission policy (periodic excerpts +
alarms instead of raw streaming) actually costs.  Shape criteria: every
patient is processed, nothing is dropped, and the smart uplink undercuts
raw streaming by well over an order of magnitude.
"""

from __future__ import annotations

from conftest import print_table
from repro.compression import raw_payload_bits
from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    NodeProxyConfig,
    SchedulerConfig,
    make_cohort,
)

N_PATIENTS = 12
DURATION_S = 120.0
FS = 250.0


def run_fleet():
    cohort = make_cohort(CohortConfig(n_patients=N_PATIENTS, seed=7))
    scheduler = FleetScheduler(
        cohort,
        SchedulerConfig(duration_s=DURATION_S, fs=FS),
        node_config=NodeProxyConfig(stream_telemetry=False),
    )
    return scheduler.run()


def test_fleet_throughput(benchmark):
    report = benchmark.pedantic(run_fleet, rounds=1, iterations=1)
    summary = report.summary

    # Raw-streaming baseline for a 3-lead node, per patient per day.
    raw_bytes_day = raw_payload_bits(int(86400 * FS), 12) * 3 / 8.0
    reduction = raw_bytes_day / summary.uplink_bytes_per_patient_day

    print_table(
        "Fleet throughput "
        f"({N_PATIENTS} patients x {DURATION_S:.0f} s)",
        ["metric", "value"],
        [
            ("patients/sec", report.patients_per_second),
            ("node phase [s]", report.timings_s["synthesis+node"]),
            ("gateway phase [s]", report.timings_s["uplink+gateway"]),
            ("packets sent", report.packets_sent),
            ("uplink kB/patient/day",
             summary.uplink_bytes_per_patient_day / 1e3),
            ("raw streaming kB/patient/day", raw_bytes_day / 1e3),
            ("bandwidth reduction [x]", reduction),
            ("reconstruction SNR p50 [dB]", summary.snr_p50_db),
            ("mean battery [days]", summary.mean_battery_days),
        ],
    )

    assert summary.n_patients == N_PATIENTS
    assert report.patients_per_second > 0.1
    assert summary.dropped_packets == 0
    assert len(report.excerpts) == report.packets_sent
    # Smart transmission must beat raw streaming by >= an order of
    # magnitude (the whole point of the paper's §V policy).
    assert reduction > 10.0
    # Server-side reconstruction stays useful at the CR 60 % default.
    assert summary.snr_p50_db > 12.0
