"""Per-patient node proxy: the uplink side of the fleet link.

Wraps the existing node paths — :class:`~repro.pipeline.StreamingMonitor`
for incremental beat telemetry and
:class:`~repro.pipeline.CardiacMonitorNode` for alarms, bandwidth and
energy accounting — into a node that *emits packets*: timestamped
periodic CS excerpts plus alarm events carrying CS-compressed context,
exactly the §V transmission policy ("periodically or when an abnormality
is detected").

Every packet carries the encoder geometry (window length, CR, seed), so
the gateway can rebuild the sensing matrices and reconstruct without any
side channel.  The ``reference`` field holds the original samples for
reconstruction-SNR scoring only; it is never counted as payload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ..classification.afib import AfDetector
from ..compression.encoder import EncodedWindow, MultiLeadCsEncoder
from ..filtering.combination import combine_leads
from ..pipeline.node_app import CardiacMonitorNode, NodeReport
from ..pipeline.streaming import StreamingConfig, StreamingMonitor
from ..power.governor import (
    MODE_EVENTS_ONLY,
    MODE_MULTI_LEAD_CS,
    MODE_RAW,
    MODE_SINGLE_LEAD_CS,
)
from ..signals.types import MultiLeadEcg
from .cohort import PatientProfile

PACKET_EXCERPT = "excerpt"
PACKET_ALARM = "alarm"
#: Events-only uplink: no waveform, just telemetry (heart rate, mode,
#: battery state of charge) — what a governed node sends while coasting
#: in ``delineation_only`` mode.
PACKET_TELEMETRY = "telemetry"

#: Per-packet link-layer header charged on top of the CS payload
#: (patient id, sequence number, timestamp, kind).
PACKET_HEADER_BITS = 64

#: Telemetry body bits (heart rate, state of charge, mode, beat count).
TELEMETRY_BITS = 96


@dataclass(frozen=True)
class UplinkPacket:
    """One timestamped uplink transmission from a node.

    Attributes:
        patient_id: Emitting node.
        seq: Per-patient sequence number.
        timestamp_s: Emission time within the recording.
        kind: :data:`PACKET_EXCERPT` or :data:`PACKET_ALARM`.
        start: First sample covered by the excerpt.
        frames: Consecutive CS windows; each frame holds one
            :class:`EncodedWindow` per lead.
        payload_bits: Bits on the air (CS payload + header).
        n_leads: Leads in each frame.
        window_n: Samples per CS window.
        cr_percent: Compression ratio the encoder ran at.
        quant_bits: Measurement word size.
        cs_seed: Base seed of the per-lead sensing matrices.
        fs: Node sampling rate.
        mean_hr_bpm: Streamed heart-rate telemetry (nan when unknown).
        reference: Original samples ``(frames, leads, window_n)`` for
            SNR scoring; evaluation-only, excluded from ``payload_bits``.
        mode: Operating mode the node was in when it emitted this packet
            (see :data:`repro.power.MODES`).  ``raw``-mode excerpts ship
            uncompressed samples in ``reference`` with no CS frames.
        soc: Battery state-of-charge telemetry at emission (nan when the
            node runs ungoverned).
    """

    patient_id: str
    seq: int
    timestamp_s: float
    kind: str
    start: int
    frames: tuple[tuple[EncodedWindow, ...], ...]
    payload_bits: int
    n_leads: int
    window_n: int
    cr_percent: float
    quant_bits: int
    cs_seed: int
    fs: float
    mean_hr_bpm: float = float("nan")
    reference: np.ndarray | None = None
    mode: str = MODE_MULTI_LEAD_CS
    soc: float = float("nan")

    @property
    def n_frames(self) -> int:
        """Number of consecutive CS windows carried."""
        return len(self.frames)

    @property
    def span_samples(self) -> int:
        """Samples of signal covered by the excerpt."""
        return self.n_frames * self.window_n

    def to_bytes(self) -> bytes:
        """This packet's exact binary wire frame.

        Convenience front for :func:`repro.fleet.wire.encode_packet` —
        what a real node would hand to the radio.
        """
        from .wire import encode_packet

        return encode_packet(self)

    @classmethod
    def from_bytes(cls, data: bytes | bytearray | memoryview,
                   ) -> "UplinkPacket":
        """Rebuild a packet from its wire frame (exact round trip).

        Raises:
            ~repro.fleet.wire.WireFormatError: The buffer does not
                parse as a valid packet frame.
        """
        from .wire import decode_packet

        return decode_packet(data)


@dataclass(frozen=True)
class NodeProxyConfig:
    """Uplink policy of one node.

    Attributes:
        excerpt_period_s: Period of routine CS excerpt transmissions.
        window_n: CS window length in samples (all frames).
        cr_percent: CS compression ratio.
        quant_bits: Measurement word size.
        cs_seed: Base sensing-matrix seed, shared fleet-wide so the
            gateway (and the batch encoder) can reuse one matrix family.
        alarm_context_s: Signal context shipped with each alarm (rounded
            up to whole CS windows; must cover a few beats so the
            gateway can re-check RR irregularity).
        stream_telemetry: Run the streaming monitor over the combined
            lead and attach per-period heart-rate telemetry.
        attach_reference: Ship original samples for SNR evaluation.
    """

    excerpt_period_s: float = 60.0
    window_n: int = 256
    cr_percent: float = 60.0
    quant_bits: int = 12
    cs_seed: int = 11
    alarm_context_s: float = 8.0
    stream_telemetry: bool = True
    attach_reference: bool = True


class NodeProxy:
    """One patient's node: processes a recording, emits uplink packets.

    Args:
        profile: The patient this node is strapped to.
        config: Uplink policy.
        af_detector: Trained AF detector shared across the fleet; the
            proxy rebinds its delineation lead to the node's lead count.
    """

    def __init__(self, profile: PatientProfile,
                 config: NodeProxyConfig | None = None,
                 af_detector: AfDetector | None = None) -> None:
        self.profile = profile
        self.config = config or NodeProxyConfig()
        self.af_detector = _rebind_lead(af_detector, profile.n_leads)
        self.encoder = MultiLeadCsEncoder(
            n_leads=profile.n_leads,
            n=self.config.window_n,
            cr_percent=self.config.cr_percent,
            quant_bits=self.config.quant_bits,
            seed=self.config.cs_seed,
        )
        self._seq = 0
        self._fs = 250.0
        self._sl_encoder: MultiLeadCsEncoder | None = None
        #: Per-excerpt-period mean heart rate from the streaming pass of
        #: the last :meth:`run` (the scheduler reads this for batched
        #: excerpt packets).
        self.heart_rates: dict[int, float] = {}

    @property
    def delineation_lead(self) -> int:
        """Lead index carrying the lead II morphology (repo convention)."""
        return min(1, self.profile.n_leads - 1)

    @property
    def sl_encoder(self) -> MultiLeadCsEncoder:
        """Single-lead encoder for ``single_lead_cs`` mode (same matrix
        family/seed as the fleet, 1-lead geometry)."""
        if self._sl_encoder is None:
            cfg = self.config
            self._sl_encoder = MultiLeadCsEncoder(
                n_leads=1, n=cfg.window_n, cr_percent=cfg.cr_percent,
                quant_bits=cfg.quant_bits, seed=cfg.cs_seed)
        return self._sl_encoder

    def single_lead_packet(self, record: MultiLeadEcg, start: int,
                           timestamp_s: float,
                           mean_hr_bpm: float = float("nan"),
                           soc: float = float("nan")) -> UplinkPacket:
        """Single-lead-CS excerpt: only the delineation lead goes up."""
        cfg = self.config
        window = record.signals[self.delineation_lead:
                                self.delineation_lead + 1,
                                start:start + cfg.window_n]
        return self.packet_from_frames(
            kind=PACKET_EXCERPT,
            timestamp_s=timestamp_s,
            start=start,
            frames=[self.sl_encoder.encode(window)],
            reference=(window[np.newaxis] if cfg.attach_reference
                       else None),
            mean_hr_bpm=mean_hr_bpm,
            mode=MODE_SINGLE_LEAD_CS,
            soc=soc,
            n_leads=1,
        )

    def run(self, record: MultiLeadEcg,
            emit_excerpts: bool = True,
            emit_alarms: bool = True,
            ) -> tuple[NodeReport, list[UplinkPacket]]:
        """Process one recording; return the node report and its uplink.

        Sequence numbers of the returned packets follow uplink
        (timestamp) order, so a receiver reassembling on ``seq`` also
        restores timestamp order.  Numbering continues from any earlier
        run of the same proxy — a gateway channel survives consecutive
        recordings without mistaking the new session for duplicates.

        Args:
            record: The patient's recording (lead count must match the
                profile).
            emit_excerpts: Emit the periodic excerpt packets here.  The
                fleet scheduler sets this to ``False`` and produces the
                identical packets through its vectorized batch encoder.
            emit_alarms: Emit alarm packets here.  The fleet scheduler
                sets this to ``False`` too and builds each alarm packet
                (:meth:`alarm_packet`) at the tick that uplinks it, so
                sequence numbers are assigned in true send order.
        """
        if record.n_leads != self.profile.n_leads:
            raise ValueError(
                f"record has {record.n_leads} leads, node expects "
                f"{self.profile.n_leads}")
        cfg = self.config
        base_seq = self._seq
        self._fs = record.fs
        node = CardiacMonitorNode(
            af_detector=self.af_detector,
            excerpt_period_s=cfg.excerpt_period_s,
            excerpt_window_s=cfg.window_n / record.fs,
            cs_cr_percent=cfg.cr_percent,
        )
        report = node.process(record)
        self.heart_rates = (self._stream_heart_rates(record)
                            if cfg.stream_telemetry else {})
        hr_by_period = self.heart_rates

        packets: list[UplinkPacket] = []
        if emit_excerpts:
            for period, start in enumerate(
                    self.excerpt_starts(record.n_samples, record.fs)):
                window = record.signals[:, start:start + cfg.window_n]
                packets.append(self.packet_from_frames(
                    kind=PACKET_EXCERPT,
                    timestamp_s=(period + 1) * cfg.excerpt_period_s,
                    start=start,
                    frames=[self.encoder.encode(window)],
                    reference=window[np.newaxis] if cfg.attach_reference
                    else None,
                    mean_hr_bpm=hr_by_period.get(period, float("nan")),
                ))
        if emit_alarms:
            for alarm in report.alarms:
                packets.append(self.alarm_packet(record, alarm.start))
        packets.sort(key=lambda p: (p.timestamp_s, p.seq))
        packets = [replace(p, seq=base_seq + i)
                   for i, p in enumerate(packets)]
        self._seq = base_seq + len(packets)
        return report, packets

    def excerpt_starts(self, n_samples: int, fs: float) -> list[int]:
        """Window start samples of the periodic excerpt schedule.

        Each excerpt covers the ``window_n`` samples ending at its
        period boundary.

        Raises:
            ValueError: When the period is too short to hold one window.
        """
        cfg = self.config
        period = int(cfg.excerpt_period_s * fs)
        if period < cfg.window_n:
            raise ValueError(
                f"excerpt_period_s ({cfg.excerpt_period_s} s = {period} "
                f"samples) must cover at least one CS window "
                f"({cfg.window_n} samples)")
        return [t - cfg.window_n for t in range(period, n_samples + 1,
                                                period)]

    def packet_from_frames(self, kind: str, timestamp_s: float, start: int,
                           frames: list[list[EncodedWindow]],
                           reference: np.ndarray | None = None,
                           mean_hr_bpm: float = float("nan"),
                           mode: str = MODE_MULTI_LEAD_CS,
                           soc: float = float("nan"),
                           n_leads: int | None = None,
                           ) -> UplinkPacket:
        """Assemble one packet from already-encoded frames.

        Args:
            kind: Packet kind constant.
            timestamp_s: Emission time.
            start: First covered sample.
            frames: Per-frame, per-lead encoded windows.
            reference: Evaluation-only original samples.
            mean_hr_bpm: Heart-rate telemetry.
            mode: Operating-mode telemetry stamped on the packet.
            soc: Battery state-of-charge telemetry.
            n_leads: Leads carried per frame; defaults to the node's
                lead count (``single_lead_cs`` packets carry 1).
        """
        cfg = self.config
        payload = sum(w.payload_bits for frame in frames for w in frame)
        packet = UplinkPacket(
            patient_id=self.profile.patient_id,
            seq=self._seq,
            timestamp_s=timestamp_s,
            kind=kind,
            start=start,
            frames=tuple(tuple(frame) for frame in frames),
            payload_bits=payload + PACKET_HEADER_BITS,
            n_leads=self.profile.n_leads if n_leads is None else n_leads,
            window_n=cfg.window_n,
            cr_percent=cfg.cr_percent,
            quant_bits=cfg.quant_bits,
            cs_seed=cfg.cs_seed,
            fs=self._fs,
            mean_hr_bpm=mean_hr_bpm,
            reference=reference,
            mode=mode,
            soc=soc,
        )
        self._seq += 1
        return packet

    def telemetry_packet(self, timestamp_s: float,
                         mean_hr_bpm: float = float("nan"),
                         soc: float = float("nan")) -> UplinkPacket:
        """Events-only uplink: heart rate, mode and SoC, no waveform.

        What a governed node sends at each tick while coasting in
        ``delineation_only`` mode — a fixed :data:`TELEMETRY_BITS` body
        instead of a CS excerpt.
        """
        packet = UplinkPacket(
            patient_id=self.profile.patient_id,
            seq=self._seq,
            timestamp_s=timestamp_s,
            kind=PACKET_TELEMETRY,
            start=0,
            frames=(),
            payload_bits=TELEMETRY_BITS + PACKET_HEADER_BITS,
            n_leads=self.profile.n_leads,
            window_n=self.config.window_n,
            cr_percent=self.config.cr_percent,
            quant_bits=self.config.quant_bits,
            cs_seed=self.config.cs_seed,
            fs=self._fs,
            mean_hr_bpm=mean_hr_bpm,
            mode=MODE_EVENTS_ONLY,
            soc=soc,
        )
        self._seq += 1
        return packet

    def raw_packet(self, record: MultiLeadEcg, start: int,
                   timestamp_s: float,
                   mean_hr_bpm: float = float("nan"),
                   soc: float = float("nan")) -> UplinkPacket:
        """Raw-mode excerpt: uncompressed samples, no CS frames.

        The window rides in ``reference`` (shape ``(1, leads, n)``) and
        the gateway passes it through verbatim — there is nothing to
        reconstruct, and no SNR is scored (the copy is exact).
        ``payload_bits`` charges the full uncompressed word size.
        """
        cfg = self.config
        window = record.signals[:, start:start + cfg.window_n]
        payload = window.shape[0] * window.shape[1] * cfg.quant_bits
        packet = UplinkPacket(
            patient_id=self.profile.patient_id,
            seq=self._seq,
            timestamp_s=timestamp_s,
            kind=PACKET_EXCERPT,
            start=start,
            frames=(),
            payload_bits=payload + PACKET_HEADER_BITS,
            n_leads=self.profile.n_leads,
            window_n=cfg.window_n,
            cr_percent=cfg.cr_percent,
            quant_bits=cfg.quant_bits,
            cs_seed=cfg.cs_seed,
            fs=self._fs,
            mean_hr_bpm=mean_hr_bpm,
            reference=window[np.newaxis].copy(),
            mode=MODE_RAW,
            soc=soc,
        )
        self._seq += 1
        return packet

    def alarm_packet(self, record: MultiLeadEcg,
                     alarm_start: int) -> UplinkPacket:
        """CS-compressed context around an abnormality event.

        The packet timestamp is the alarm *event* time; the ``start``
        field carries the (possibly earlier, clamped-to-fit) first
        sample of the shipped context.
        """
        cfg = self.config
        n = cfg.window_n
        n_frames = max(1, math.ceil(cfg.alarm_context_s * record.fs / n))
        start = min(max(0, alarm_start),
                    max(0, record.n_samples - n_frames * n))
        frames = []
        refs = []
        for f in range(n_frames):
            lo = start + f * n
            window = record.signals[:, lo:lo + n]
            if window.shape[1] < n:
                break
            frames.append(self.encoder.encode(window))
            refs.append(window)
        reference = np.stack(refs) if (refs and cfg.attach_reference) else None
        return self.packet_from_frames(
            kind=PACKET_ALARM,
            timestamp_s=max(0, alarm_start) / record.fs,
            start=start,
            frames=frames,
            reference=reference,
        )

    def _stream_heart_rates(self, record: MultiLeadEcg) -> dict[int, float]:
        """Mean heart rate per excerpt period, via the streaming monitor."""
        combined = combine_leads(record, method="rms")
        monitor = StreamingMonitor(StreamingConfig(fs=record.fs))
        period = int(self.config.excerpt_period_s * record.fs)
        peaks_by_period: dict[int, list[int]] = {}
        beats = monitor.push_block(combined.signal)
        beats.extend(monitor.flush())
        for beat in beats:
            peaks_by_period.setdefault(beat.r_peak // period,
                                       []).append(beat.r_peak)
        rates: dict[int, float] = {}
        for period_idx, peaks in peaks_by_period.items():
            if len(peaks) < 2:
                continue
            rr = np.diff(np.sort(np.asarray(peaks, dtype=float)))
            mean_rr = float(np.mean(rr))
            if mean_rr > 0:
                rates[period_idx] = 60.0 * record.fs / mean_rr
        return rates


def _rebind_lead(detector: AfDetector | None,
                 n_leads: int) -> AfDetector | None:
    """Clone a trained detector onto the node's available leads.

    The fleet trains one detector offline (3-lead corpus); nodes with
    fewer leads delineate on their best available lead while sharing the
    trained fuzzy classifier.
    """
    if detector is None:
        return None
    lead = min(detector.lead, n_leads - 1)
    if lead == detector.lead:
        return detector
    clone = AfDetector(window_beats=detector.window_beats,
                       step_beats=detector.step_beats,
                       lead=lead, membership=detector.membership)
    clone.classifier = detector.classifier
    return clone
