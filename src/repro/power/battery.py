"""Battery-lifetime estimation ("mean time between charges is typically
one week", paper §V).

Small wearables carry 100-200 mAh lithium-polymer cells; this module turns
an average node power into a recharge interval, including self-discharge
and a usable-capacity derating.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Battery:
    """A small LiPo cell.

    Attributes:
        capacity_mah: Nominal capacity.
        voltage_v: Nominal cell voltage.
        usable_fraction: Usable depth of discharge (protection cutoffs,
            converter efficiency).
        self_discharge_per_month: Monthly self-discharge fraction.
    """

    capacity_mah: float = 150.0
    voltage_v: float = 3.7
    usable_fraction: float = 0.85
    self_discharge_per_month: float = 0.05

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.voltage_v <= 0:
            raise ValueError("capacity and voltage must be positive")
        if not 0 < self.usable_fraction <= 1:
            raise ValueError("usable_fraction must lie in (0, 1]")

    @property
    def usable_energy_j(self) -> float:
        """Usable energy in joules."""
        return (self.capacity_mah / 1000.0) * 3600.0 * self.voltage_v \
            * self.usable_fraction

    def self_discharge_power_w(self) -> float:
        """Average self-discharge drain."""
        month_s = 30 * 24 * 3600.0
        return self.usable_energy_j * self.self_discharge_per_month / month_s

    def lifetime_days(self, average_power_w: float) -> float:
        """Days between charges at a given average node power."""
        if average_power_w < 0:
            raise ValueError("average power must be non-negative")
        drain = average_power_w + self.self_discharge_power_w()
        if drain == 0:
            return float("inf")
        return self.usable_energy_j / drain / 86400.0
