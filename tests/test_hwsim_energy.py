"""Unit tests for the hwsim energy model and power reports."""

import pytest

from repro.hwsim import EnergyModel, power_report
from repro.hwsim.platform import EventCounters


class TestVoltageFrequency:
    def test_interpolation_monotone(self):
        model = EnergyModel()
        freqs = [20e3, 100e3, 400e3, 2e6, 10e6]
        volts = [model.voltage_for_frequency(f) for f in freqs]
        assert all(a < b for a, b in zip(volts, volts[1:]))

    def test_clamps_to_floor(self):
        model = EnergyModel()
        assert model.voltage_for_frequency(1.0) == model.vf_points[0][0]

    def test_raises_above_top(self):
        model = EnergyModel()
        with pytest.raises(ValueError, match="exceeds"):
            model.voltage_for_frequency(1e9)

    def test_exact_points(self):
        model = EnergyModel()
        for v, f in model.vf_points:
            assert model.voltage_for_frequency(f) == pytest.approx(v,
                                                                   abs=1e-9)

    def test_scaling_laws(self):
        model = EnergyModel(v_nominal=0.5)
        assert model.dynamic_scale(0.5) == 1.0
        assert model.dynamic_scale(1.0) == pytest.approx(4.0)
        assert model.leakage_scale(1.0) == pytest.approx(8.0)


class TestPowerReport:
    def _counters(self):
        return EventCounters(cycles=100_000, alu_instructions=60_000,
                             mul_instructions=10_000,
                             memory_instructions=20_000,
                             branch_instructions=10_000,
                             imem_accesses=100_000,
                             dmem_private_accesses=20_000)

    def test_components_positive(self):
        report = power_report("x", self._counters(), deadline_s=1.0,
                              n_cores=1)
        assert report.core_w > 0
        assert report.imem_w > 0
        assert report.dmem_w > 0
        assert report.leakage_w > 0
        assert report.total_w == pytest.approx(
            report.core_w + report.imem_w + report.dmem_w
            + report.leakage_w)

    def test_frequency_from_deadline(self):
        report = power_report("x", self._counters(), deadline_s=0.5,
                              n_cores=1)
        assert report.frequency_hz == pytest.approx(200_000)

    def test_longer_deadline_lower_power(self):
        tight = power_report("x", self._counters(), 0.2, 1)
        relaxed = power_report("x", self._counters(), 2.0, 1)
        assert relaxed.total_w < tight.total_w
        assert relaxed.voltage_v < tight.voltage_v

    def test_leakage_scales_with_cores(self):
        one = power_report("x", self._counters(), 1.0, 1)
        three = power_report("x", self._counters(), 1.0, 3)
        assert three.leakage_w > one.leakage_w

    def test_invalid_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            power_report("x", self._counters(), 0.0, 1)

    def test_microwatt_export(self):
        report = power_report("x", self._counters(), 1.0, 1)
        uw = report.as_microwatts()
        assert uw["total"] == pytest.approx(1e6 * report.total_w)
        assert set(uw) == {"core", "imem", "dmem", "leakage", "total"}
