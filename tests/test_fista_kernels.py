"""Unit tests for the fused FISTA tail kernels (`fista_kernels`).

The dispatchers must be byte-identical to the reference numpy
expressions on every input — including NaN, zero-norm and
above-`MAX_COMPILED_LEADS` edge cases — on whichever backend is live.
A subprocess leg forces ``REPRO_NO_NUMBA=1`` and checks the end-to-end
recovery digest against the in-process path, so the flag (and, on a
numba-equipped machine, the compiled drain) is proven byte-invisible.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression.fista_kernels import (
    MAX_COMPILED_LEADS,
    _group_shrink_update_np,
    _soft_shrink_update_np,
    backend,
    group_shrink_update,
    soft_shrink_update,
)

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


def _batch(rng, n_batch, n, n_leads):
    return rng.standard_normal((n_batch, n, n_leads))


class TestBackend:
    def test_backend_reports_a_known_value(self):
        assert backend() in ("numba", "numpy")

    def test_env_override_forces_numpy(self):
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.compression.fista_kernels import backend;"
             "print(backend())"],
            env=dict(os.environ, REPRO_NO_NUMBA="1",
                     PYTHONPATH=os.environ.get("PYTHONPATH", "src")),
            capture_output=True, text=True, check=True)
        assert out.stdout.strip() == "numpy"


class TestGroupShrinkUpdate:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           n_batch=st.integers(1, 4), n=st.integers(1, 24),
           n_leads=st.integers(1, MAX_COMPILED_LEADS),
           step=finite, ratio=finite)
    def test_matches_reference_bitwise(self, seed, n_batch, n, n_leads,
                                       step, ratio):
        rng = np.random.default_rng(seed)
        mom = _batch(rng, n_batch, n, n_leads)
        grad = _batch(rng, n_batch, n, n_leads)
        old = _batch(rng, n_batch, n, n_leads)
        thresholds = np.abs(rng.standard_normal(n_batch))
        got_a, got_m = group_shrink_update(mom, grad, step, thresholds,
                                           old, ratio)
        ref_a, ref_m = _group_shrink_update_np(mom, grad, step,
                                               thresholds, old, ratio)
        assert got_a.tobytes() == ref_a.tobytes()
        assert got_m.tobytes() == ref_m.tobytes()

    def test_zero_norm_rows_shrink_to_zero(self):
        mom = np.zeros((1, 3, 2))
        grad = np.zeros((1, 3, 2))
        old = np.ones((1, 3, 2))
        alpha, momentum = group_shrink_update(
            mom, grad, 0.5, np.array([0.25]), old, 0.5)
        assert np.all(alpha == 0.0)
        assert np.all(momentum == -0.5)

    def test_nan_inputs_match_reference(self):
        mom = np.full((1, 2, 2), np.nan)
        grad = np.zeros((1, 2, 2))
        old = np.zeros((1, 2, 2))
        thresholds = np.array([0.1])
        got_a, got_m = group_shrink_update(mom, grad, 0.5, thresholds,
                                           old, 0.5)
        ref_a, ref_m = _group_shrink_update_np(mom, grad, 0.5,
                                               thresholds, old, 0.5)
        assert got_a.tobytes() == ref_a.tobytes()
        assert got_m.tobytes() == ref_m.tobytes()

    def test_wide_batches_fall_back_to_reference(self):
        # Above MAX_COMPILED_LEADS numpy's pairwise norm cannot be
        # matched by a sequential loop — the dispatcher must route to
        # the reference path (and still agree with it, trivially).
        rng = np.random.default_rng(3)
        wide = MAX_COMPILED_LEADS + 1
        mom = _batch(rng, 2, 5, wide)
        grad = _batch(rng, 2, 5, wide)
        old = _batch(rng, 2, 5, wide)
        thresholds = np.array([0.1, 0.2])
        got = group_shrink_update(mom, grad, 0.1, thresholds, old, 0.3)
        ref = _group_shrink_update_np(mom, grad, 0.1, thresholds, old,
                                      0.3)
        assert got[0].tobytes() == ref[0].tobytes()
        assert got[1].tobytes() == ref[1].tobytes()


class TestSoftShrinkUpdate:
    @settings(max_examples=25, deadline=None)
    @given(vec=hnp.arrays(np.float64, st.integers(1, 64),
                          elements=finite),
           step=finite, threshold=st.floats(0.0, 1e3), ratio=finite,
           seed=st.integers(0, 2**32 - 1))
    def test_matches_reference_bitwise(self, vec, step, threshold,
                                       ratio, seed):
        rng = np.random.default_rng(seed)
        grad = rng.standard_normal(vec.shape)
        old = rng.standard_normal(vec.shape)
        got_a, got_m = soft_shrink_update(vec, grad, step, threshold,
                                          old, ratio)
        ref_a, ref_m = _soft_shrink_update_np(vec, grad, step,
                                              threshold, old, ratio)
        assert got_a.tobytes() == ref_a.tobytes()
        assert got_m.tobytes() == ref_m.tobytes()

    def test_nan_sign_semantics_match_numpy(self):
        vec = np.array([np.nan, -2.0, 0.0, 2.0])
        grad = np.zeros(4)
        old = np.zeros(4)
        got_a, _ = soft_shrink_update(vec, grad, 0.0, 0.5, old, 0.0)
        ref_a, _ = _soft_shrink_update_np(vec, grad, 0.0, 0.5, old, 0.0)
        assert got_a.tobytes() == ref_a.tobytes()
        assert np.isnan(got_a[0])
        assert got_a[1] == -1.5 and got_a[2] == 0.0 and got_a[3] == 1.5


_DIGEST_SNIPPET = """
import hashlib, json, sys
import numpy as np
from repro.compression import CsDecoder, CsEncoder, JointCsDecoder, \\
    MultiLeadCsEncoder
from repro.compression.fista_kernels import backend
rng = np.random.default_rng(11)
single = CsEncoder(n=128, cr_percent=50.0, seed=5)
x = np.cumsum(rng.standard_normal(128))
rec = CsDecoder(single.sensing, n_iter=60).recover(single.encode(x))
multi = MultiLeadCsEncoder(n_leads=3, n=128, cr_percent=50.0, seed=5)
leads = np.cumsum(rng.standard_normal((3, 128)), axis=1)
recs = JointCsDecoder(multi.sensing_matrices, n_iter=60,
                      n_leads=3).recover(multi.encode(leads))
digest = hashlib.sha256(
    rec.window.tobytes() + recs.windows.tobytes()).hexdigest()
json.dump({"backend": backend(), "digest": digest}, sys.stdout)
"""


class TestBackendParity:
    def test_forced_fallback_digest_matches_live_backend(self):
        # End-to-end: single- and multi-lead recovery digests must be
        # identical under REPRO_NO_NUMBA=1 and under the live backend.
        # On a numba machine this is the compiled-vs-numpy bit-exactness
        # proof; on a numpy-only machine it pins the flag path.
        def run(extra_env):
            env = dict(os.environ, **extra_env)
            env.setdefault("PYTHONPATH", "src")
            out = subprocess.run([sys.executable, "-c",
                                  _DIGEST_SNIPPET], env=env,
                                 capture_output=True, text=True,
                                 check=True)
            return json.loads(out.stdout)

        forced = run({"REPRO_NO_NUMBA": "1"})
        live = run({})
        assert forced["backend"] == "numpy"
        assert forced["digest"] == live["digest"]
