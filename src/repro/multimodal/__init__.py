"""Multi-modal cardiac parameter estimation (paper §IV-C) and HRV."""

from .hrv import (
    FrequencyDomainHrv,
    HF_BAND,
    HrvReport,
    LF_BAND,
    TimeDomainHrv,
    analyze_hrv,
    frequency_domain_hrv,
    resample_tachogram,
    time_domain_hrv,
)

from .pat import (
    BpEstimator,
    PAT_MAX_S,
    PAT_MIN_S,
    PatSeries,
    detect_pulse_feet,
    measure_pat,
    pulse_arrival_times,
    pwv_from_pat,
)
from .spo2 import (
    CALIBRATION_A,
    CALIBRATION_B,
    Spo2Estimate,
    estimate_spo2,
    ratio_of_ratios,
    spo2_from_ratio,
    synthesize_dual_ppg,
)

__all__ = [
    "BpEstimator",
    "FrequencyDomainHrv",
    "HF_BAND",
    "HrvReport",
    "LF_BAND",
    "TimeDomainHrv",
    "analyze_hrv",
    "frequency_domain_hrv",
    "resample_tachogram",
    "time_domain_hrv",
    "CALIBRATION_A",
    "CALIBRATION_B",
    "PAT_MAX_S",
    "PAT_MIN_S",
    "PatSeries",
    "Spo2Estimate",
    "detect_pulse_feet",
    "estimate_spo2",
    "measure_pat",
    "pulse_arrival_times",
    "pwv_from_pat",
    "ratio_of_ratios",
    "spo2_from_ratio",
    "synthesize_dual_ppg",
]
