"""Torn-write fuzz suite for the journal recovery state machine.

Property under test (the ISSUE's recovery bar): for a valid journal
truncated or corrupted at *any* byte offset, opening it either recovers
cleanly to the last whole record (yielding an exact prefix of the
original record sequence) or raises :class:`JournalError` — it never
yields a wrong packet.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    JournalConfig,
    JournalError,
    JournalReader,
    JournalWriter,
    NodeProxy,
    NodeProxyConfig,
    PatientProfile,
    ServeMessage,
    journal_meta,
)
from repro.fleet.journal import _SegmentScan


def _build_journal(tmp_path) -> tuple[JournalConfig, bytes, int, list]:
    """One small single-segment journal plus its raw bytes."""
    config = JournalConfig(dir=str(tmp_path), name="fuzz")
    proxy = NodeProxy(PatientProfile(patient_id="fz0", seed=3),
                      NodeProxyConfig(stream_telemetry=False))
    with JournalWriter(config, meta=journal_meta(60.0, 250.0)) as writer:
        for i in range(6):
            writer.append_message(ServeMessage("expire", "",
                                               t_s=float(i)))
            writer.append_packet(
                proxy.telemetry_packet(float(i), mean_hr_bpm=70.0,
                                       soc=0.4).to_bytes(), "fz0")
            writer.append_message(ServeMessage(
                "drain", "", t_s=float(i), fields={"budget": -1.0}))
    path = config.segment_paths()[0]
    data = path.read_bytes()
    scan = _SegmentScan(path, tolerate_torn=True)
    records = list(scan.records())
    header_len = scan._start
    return config, data, header_len, records


@pytest.fixture(scope="module")
def journal(tmp_path_factory):
    return _build_journal(tmp_path_factory.mktemp("fuzz-journal"))


@pytest.fixture(scope="module")
def scratch(tmp_path_factory):
    """Module-scoped scratch dir (hypothesis-safe: ``@given`` examples
    may not touch function-scoped fixtures)."""
    return tmp_path_factory.mktemp("fuzz-scratch")


def _read_all(config: JournalConfig):
    reader = JournalReader(config)
    records = list(reader.records())
    return records, reader.torn_tail_bytes


class TestExhaustiveTruncation:
    def test_every_truncation_point_recovers_prefix_or_raises(
            self, journal, tmp_path):
        """Chop the journal at *every* byte offset; recovery must give
        an exact record prefix (reader and reopened writer agreeing)
        or a clean :class:`JournalError` — never a wrong record."""
        config, data, header_len, records = journal
        target = JournalConfig(dir=str(tmp_path), name="fuzz")
        path = target.segment_path(0)
        for cut in range(len(data)):
            path.write_bytes(data[:cut])
            if cut < header_len:
                with pytest.raises(JournalError):
                    _read_all(target)
                with pytest.raises(JournalError):
                    JournalWriter(target)
                continue
            got, torn = _read_all(target)
            assert got == records[:len(got)]
            # A writer over the same bytes truncates the same tail and
            # keeps exactly the records the reader saw.
            writer = JournalWriter(target)
            assert writer.n_truncated_bytes == torn
            writer.close()
            survivors, torn_after = _read_all(target)
            assert survivors == got
            assert torn_after == 0

    def test_truncation_loses_at_most_one_record(self, journal,
                                                 tmp_path):
        """Cutting inside record N keeps records 0..N-1 intact."""
        config, data, header_len, records = journal
        target = JournalConfig(dir=str(tmp_path), name="fuzz")
        path = target.segment_path(0)
        # Record boundaries: reconstruct offsets by replaying lengths.
        offsets = [header_len]
        scan = _SegmentScan(config.segment_path(0), tolerate_torn=True)
        for _ in scan.records():
            offsets.append(scan.valid_end)
        for n in range(len(records)):
            cut = offsets[n] + (offsets[n + 1] - offsets[n]) // 2
            path.write_bytes(data[:cut])
            got, torn = _read_all(target)
            assert got == records[:n]
            assert torn == cut - offsets[n]


class TestBitFlipCorruption:
    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_flips_never_yield_a_wrong_record(self, journal, scratch,
                                              data):
        """Flip one bit anywhere in the record region: the CRC (or the
        length sanity checks) must catch it — the reader yields a
        prefix of the original records or raises, never a mutant."""
        config, raw, header_len, records = journal
        target = JournalConfig(dir=str(scratch), name="fuzz")
        path = target.segment_path(0)
        pos = data.draw(st.integers(min_value=header_len,
                                    max_value=len(raw) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        mutated = bytearray(raw)
        mutated[pos] ^= 1 << bit
        path.write_bytes(bytes(mutated))
        try:
            got, _ = _read_all(target)
        except JournalError:
            return
        assert got == records[:len(got)]

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_header_flips_raise_or_preserve_records(self, journal,
                                                    scratch, data):
        """Header corruption is detected (bad magic/version/lengths) or
        benign (flags, metadata text) — record payloads never change."""
        config, raw, header_len, records = journal
        target = JournalConfig(dir=str(scratch), name="fuzz")
        path = target.segment_path(0)
        pos = data.draw(st.integers(min_value=0,
                                    max_value=header_len - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        mutated = bytearray(raw)
        mutated[pos] ^= 1 << bit
        path.write_bytes(bytes(mutated))
        try:
            got, _ = _read_all(target)
        except JournalError:
            return
        assert got == records
