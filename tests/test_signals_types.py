"""Unit tests for repro.signals.types."""

import numpy as np
import pytest

from repro.signals import (
    ABSENT_WAVE,
    BeatAnnotation,
    EcgRecord,
    MultiLeadEcg,
    PpgRecord,
    WaveFiducials,
)


class TestWaveFiducials:
    def test_present_wave(self):
        wave = WaveFiducials(onset=10, peak=15, end=20)
        assert wave.present
        assert wave.duration() == 10

    def test_absent_wave(self):
        assert not ABSENT_WAVE.present
        assert ABSENT_WAVE.duration() == 0

    def test_shift(self):
        wave = WaveFiducials(10, 15, 20).shifted(5)
        assert (wave.onset, wave.peak, wave.end) == (15, 20, 25)

    def test_shift_absent_is_noop(self):
        assert ABSENT_WAVE.shifted(100) is ABSENT_WAVE

    def test_duration_clamps_inverted(self):
        assert WaveFiducials(20, 21, 10).duration() == 0


class TestBeatAnnotation:
    def test_wave_lookup(self):
        qrs = WaveFiducials(5, 10, 15)
        beat = BeatAnnotation(r_peak=10, qrs=qrs)
        assert beat.wave("QRS") is qrs
        assert beat.wave("P") is ABSENT_WAVE

    def test_wave_lookup_unknown(self):
        with pytest.raises(ValueError, match="unknown wave"):
            BeatAnnotation(r_peak=10).wave("U")

    def test_shift_moves_everything(self):
        beat = BeatAnnotation(r_peak=100, qrs=WaveFiducials(95, 100, 105),
                              p_wave=WaveFiducials(60, 70, 80))
        moved = beat.shifted(-50)
        assert moved.r_peak == 50
        assert moved.qrs.onset == 45
        assert moved.p_wave.peak == 20
        assert not moved.t_wave.present


class TestEcgRecord:
    def _record(self, n=1000, fs=250.0):
        beats = [BeatAnnotation(r_peak=p) for p in (100, 300, 500, 700)]
        return EcgRecord(fs=fs, signal=np.arange(n, dtype=float),
                         beats=beats, name="r")

    def test_basic_properties(self):
        record = self._record()
        assert len(record) == 1000
        assert record.duration_s == pytest.approx(4.0)
        assert record.r_peaks.tolist() == [100, 300, 500, 700]
        assert record.labels == ["N"] * 4

    def test_rr_intervals(self):
        record = self._record()
        assert np.allclose(record.rr_intervals_s(), 0.8)

    def test_rr_intervals_single_beat(self):
        record = EcgRecord(250.0, np.zeros(100),
                           [BeatAnnotation(r_peak=10)])
        assert record.rr_intervals_s().size == 0

    def test_rejects_2d_signal(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            EcgRecord(250.0, np.zeros((2, 10)))

    def test_rejects_bad_fs(self):
        with pytest.raises(ValueError, match="positive"):
            EcgRecord(0.0, np.zeros(10))

    def test_slice_rebases_annotations(self):
        record = self._record()
        part = record.slice(250, 600)
        assert part.r_peaks.tolist() == [50, 250]
        assert len(part) == 350

    def test_slice_clamps_bounds(self):
        record = self._record()
        part = record.slice(-50, 10_000)
        assert len(part) == 1000

    def test_beat_window_length_and_content(self):
        record = self._record()
        window = record.beat_window(record.beats[1], 0.2, 0.2)
        assert window.shape[0] == 100
        assert window[50] == record.signal[300]

    def test_beat_window_zero_pads_at_edges(self):
        record = self._record()
        early = BeatAnnotation(r_peak=5)
        window = record.beat_window(early, 0.2, 0.2)
        assert window.shape[0] == 100
        assert window[0] == 0.0  # padded region


class TestMultiLeadEcg:
    def _record(self):
        signals = np.vstack([np.arange(100.0), 2 * np.arange(100.0),
                             3 * np.arange(100.0)])
        return MultiLeadEcg(fs=250.0, signals=signals,
                            beats=[BeatAnnotation(r_peak=50)])

    def test_shape_properties(self):
        record = self._record()
        assert record.n_leads == 3
        assert record.n_samples == 100
        assert record.duration_s == pytest.approx(0.4)

    def test_default_lead_names(self):
        record = self._record()
        assert tuple(record.lead_names) == ("L1", "L2", "L3")

    def test_lead_extraction_shares_beats(self):
        record = self._record()
        lead = record.lead(1)
        assert np.array_equal(lead.signal, record.signals[1])
        assert lead.r_peaks.tolist() == [50]

    def test_leads_iterator(self):
        assert len(list(self._record().leads())) == 3

    def test_lead_names_length_mismatch(self):
        with pytest.raises(ValueError, match="lead_names"):
            MultiLeadEcg(250.0, np.zeros((2, 10)), lead_names=("a",))


class TestPpgRecord:
    def test_construction_casts_types(self):
        ppg = PpgRecord(fs=250.0, signal=[0.0, 1.0],
                        pulse_feet=[1], pulse_peaks=[1], true_ptt_s=[0.2])
        assert ppg.pulse_feet.dtype == np.dtype(int)
        assert len(ppg) == 2
