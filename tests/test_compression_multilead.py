"""Unit tests for joint multi-lead CS recovery (the Fig. 5 ML curve)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression import (
    CsDecoder,
    CsEncoder,
    JointCsDecoder,
    MultiLeadCsEncoder,
    group_fista,
    group_fista_batch,
    group_soft_threshold,
    reconstruction_snr_db,
    row_stable_matmul,
)


class TestGroupSoftThreshold:
    @settings(max_examples=30, deadline=None)
    @given(rows=hnp.arrays(np.float64, st.tuples(st.integers(1, 20),
                                                 st.integers(1, 5)),
                           elements=st.floats(-100, 100, allow_nan=False)),
           t=st.floats(0.0, 50.0))
    def test_row_norms_shrink(self, rows, t):
        out = group_soft_threshold(rows, t)
        before = np.linalg.norm(rows, axis=1)
        after = np.linalg.norm(out, axis=1)
        assert np.all(after <= before + 1e-9)

    def test_rows_below_threshold_zeroed(self):
        rows = np.array([[0.1, 0.1], [3.0, 4.0]])
        out = group_soft_threshold(rows, 1.0)
        assert np.allclose(out[0], 0.0)
        assert np.linalg.norm(out[1]) == pytest.approx(4.0)  # 5 - 1

    def test_direction_preserved(self):
        rows = np.array([[3.0, 4.0]])
        out = group_soft_threshold(rows, 1.0)
        assert np.allclose(out / np.linalg.norm(out),
                           rows / np.linalg.norm(rows))


class TestGroupFista:
    def test_recovers_jointly_sparse_rows(self, rng):
        m, n, leads, k = 50, 100, 3, 6
        operators = [rng.standard_normal((m, n)) / np.sqrt(m)
                     for _ in range(leads)]
        truth = np.zeros((n, leads))
        support = rng.choice(n, size=k, replace=False)
        truth[support] = rng.uniform(1, 3, size=(k, leads))
        ys = [operators[lead] @ truth[:, lead] for lead in range(leads)]
        correlations = np.stack([operators[lead].T @ ys[lead]
                                 for lead in range(leads)], axis=1)
        lam = 0.02 * np.max(np.linalg.norm(correlations, axis=1))
        estimate = group_fista(operators, ys, lam, n_iter=800)
        # Debias on the detected union support (as the decoder does).
        rows = np.linalg.norm(estimate, axis=1)
        detected = np.flatnonzero(rows > 0.01 * rows.max())
        refined = np.zeros_like(estimate)
        for lead in range(leads):
            coef, *_ = np.linalg.lstsq(operators[lead][:, detected], ys[lead],
                                       rcond=None)
            refined[detected, lead] = coef
        assert sorted(detected.tolist()) == sorted(support.tolist())
        assert np.max(np.abs(refined - truth)) < 0.05

    def test_validates_lengths(self, rng):
        A = rng.standard_normal((4, 8))
        with pytest.raises(ValueError, match="per operator"):
            group_fista([A], [np.zeros(4), np.zeros(4)], 0.1)


class TestJointCsDecoder:
    def test_multilead_beats_single_lead_at_high_cr(self, clean_record):
        start, n = 1000, 512
        seg = clean_record.signals[:, start:start + n]
        cr = 70.0
        sl_encoder = CsEncoder(n=n, cr_percent=cr, seed=3)
        sl_decoder = CsDecoder(sl_encoder.sensing)
        sl = reconstruction_snr_db(
            seg[1], sl_decoder.recover(sl_encoder.encode(seg[1])).window)

        ml_encoder = MultiLeadCsEncoder(n_leads=3, n=n, cr_percent=cr,
                                        seed=100)
        ml_decoder = JointCsDecoder(ml_encoder.sensing_matrices)
        recovery = ml_decoder.recover(ml_encoder.encode(seg))
        ml = np.mean([reconstruction_snr_db(seg[lead], recovery.windows[lead])
                      for lead in range(3)])
        assert ml > sl + 2.0  # the Fig. 5 multi-lead gain

    def test_replicated_single_matrix_accepted(self, clean_record):
        n = 256
        seg = clean_record.signals[:, 1000:1000 + n]
        encoder = CsEncoder(n=n, cr_percent=40.0, seed=3)
        decoder = JointCsDecoder(encoder.sensing, n_leads=3)
        Y = np.vstack([encoder.sensing.matrix @ seg[lead] for lead in range(3)])
        recovery = decoder.recover(Y)
        assert recovery.windows.shape == (3, n)

    def test_lead_count_checked(self, clean_record):
        encoder = MultiLeadCsEncoder(n_leads=3, n=256)
        decoder = JointCsDecoder(encoder.sensing_matrices)
        with pytest.raises(ValueError, match="expected 3"):
            decoder.recover([np.zeros(encoder.m)] * 2)

    def test_window_length_consistency_checked(self):
        a = MultiLeadCsEncoder(n_leads=1, n=256).sensing_matrices[0]
        b = MultiLeadCsEncoder(n_leads=1, n=128).sensing_matrices[0]
        with pytest.raises(ValueError, match="window length"):
            JointCsDecoder([a, b])

    def test_needs_a_matrix(self):
        with pytest.raises(ValueError, match="at least one"):
            JointCsDecoder([])

    def test_support_is_shared_across_leads(self, clean_record):
        n = 256
        seg = clean_record.signals[:, 2000:2000 + n]
        encoder = MultiLeadCsEncoder(n_leads=3, n=n, cr_percent=55.0,
                                     seed=100)
        decoder = JointCsDecoder(encoder.sensing_matrices)
        recovery = decoder.recover(encoder.encode(seg))
        # Rows are zero or non-zero together (group sparsity).
        nonzero = recovery.coefficients != 0
        rows_any = nonzero.any(axis=1)
        rows_all = nonzero.all(axis=1)
        assert np.array_equal(rows_any, rows_all)


class TestRecoverBatch:
    """Batched joint recovery vs the per-window scalar path."""

    @pytest.fixture(scope="class")
    def decoder_and_frames(self, clean_record):
        encoder = MultiLeadCsEncoder(n_leads=3, n=256, cr_percent=60.0,
                                     seed=11)
        decoder = JointCsDecoder(encoder.sensing_matrices, n_iter=120)
        frames = [encoder.encode(clean_record.signals[:, lo:lo + 256])
                  for lo in range(500, 500 + 4 * 256, 256)]
        return decoder, frames

    def test_matches_scalar_recover(self, decoder_and_frames):
        decoder, frames = decoder_and_frames
        batch = decoder.recover_batch(frames)
        assert len(batch) == len(frames)
        for frame, got in zip(frames, batch):
            want = decoder.recover(frame)
            assert np.allclose(got.windows, want.windows,
                               rtol=1e-9, atol=1e-12)
            assert got.support_size == want.support_size

    def test_empty_batch(self, decoder_and_frames):
        decoder, _ = decoder_and_frames
        assert decoder.recover_batch([]) == []

    def test_lead_count_mismatch_rejected(self, decoder_and_frames):
        decoder, frames = decoder_and_frames
        with pytest.raises(ValueError, match="measurement vectors"):
            decoder.recover_batch([frames[0][:2]])

    def test_batch_fista_shape_validation(self):
        ops = [np.eye(4)]
        with pytest.raises(ValueError, match="shape"):
            group_fista_batch(ops, np.zeros((2, 3, 4)), np.zeros(2))


class TestRowStableMatmul:
    """Fixed-tile matmul: the primitive shard equivalence rests on."""

    def test_matches_gemm_values(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(13, 256))
        b = rng.normal(size=(256, 103))
        assert np.allclose(row_stable_matmul(a, b), a @ b,
                           rtol=1e-12, atol=0.0)

    def test_rows_independent_of_batch_size(self):
        # The property plain ``@`` does NOT have: BLAS switches kernels
        # (and summation orders) with the left operand's height.
        rng = np.random.default_rng(1)
        a = rng.normal(size=(23, 256))
        b = rng.normal(size=(256, 103))
        full = row_stable_matmul(a, b)
        for rows in (1, 2, 5, 8, 9, 23):
            assert np.array_equal(row_stable_matmul(a[:rows], b),
                                  full[:rows])

    def test_rows_independent_of_companions(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(6, 64))
        b = rng.normal(size=(64, 32))
        solo = [row_stable_matmul(a[i:i + 1], b)[0] for i in range(6)]
        batched = row_stable_matmul(a, b)
        for i in range(6):
            assert np.array_equal(batched[i], solo[i])

    def test_out_parameter_fills_views(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(4, 16))
        b = rng.normal(size=(16, 8))
        dest = np.zeros((4, 3, 8))
        result = row_stable_matmul(a, b, out=dest[:, 1, :])
        assert np.array_equal(dest[:, 1, :], row_stable_matmul(a, b))
        assert np.array_equal(result, dest[:, 1, :])

    def test_noncontiguous_input_accepted(self):
        rng = np.random.default_rng(4)
        stack = rng.normal(size=(5, 3, 64))
        b = rng.normal(size=(64, 16))
        view = stack[:, 1, :]  # strided over the middle axis
        assert np.array_equal(row_stable_matmul(view, b),
                              row_stable_matmul(np.ascontiguousarray(view),
                                                b))
