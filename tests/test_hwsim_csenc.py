"""Tests for the CS-encoding kernel and the [19]-style ISA extension."""

import numpy as np
import pytest

from repro.hwsim import Assembler, Platform, run_cs_accelerator
from repro.hwsim.kernels import csenc


class TestCsaInstruction:
    def test_fused_semantics(self):
        asm = Assembler()
        asm.ldi(1, 100)   # pointer to the index table
        asm.ldi(3, 0)     # accumulator
        asm.csa(3, 1)
        asm.csa(3, 1)
        asm.st(0, 3, 50)
        asm.st(0, 1, 51)
        asm.halt()
        bank = np.zeros(256, dtype=np.int64)
        bank[100] = 7     # first index -> sample at 7
        bank[101] = 9     # second index -> sample at 9
        bank[7] = 40
        bank[9] = 2
        result = Platform(1).run(asm.assemble(), [bank])
        assert result.private_memories[0][50] == 42
        assert result.private_memories[0][51] == 102  # post-incremented

    def test_counts_two_dmem_accesses(self):
        asm = Assembler()
        asm.ldi(1, 100)
        asm.csa(3, 1)
        asm.halt()
        result = Platform(1).run(asm.assemble())
        assert result.counters.dmem_private_accesses == 2
        assert result.counters.memory_instructions == 1


class TestKernelCorrectness:
    def _setup(self, rng, n=256, m=100, d=8):
        window = rng.integers(-1000, 1000, n).astype(np.int64)
        matrix = csenc.uniform_row_matrix(m, n, d, rng)
        table = csenc.row_table_from_matrix(matrix, d)
        return window, table, csenc.reference_measurements(window, table)

    @pytest.mark.parametrize("accelerated", [False, True])
    def test_measurements_match_reference(self, rng, accelerated):
        window, table, reference = self._setup(rng)
        program = csenc.build_cs_kernel(table.shape[0], table.shape[1],
                                        accelerated)
        run = Platform(1).run(program, csenc.prepare_memory(window, table))
        out = run.private_memories[0][
            csenc.OUT_BASE:csenc.OUT_BASE + table.shape[0]]
        assert np.array_equal(out, reference)

    def test_looped_accelerated_variant(self, rng):
        window, table, reference = self._setup(rng)
        program = csenc.build_cs_kernel(table.shape[0], table.shape[1],
                                        accelerated=True, unroll=False)
        run = Platform(1).run(program, csenc.prepare_memory(window, table))
        out = run.private_memories[0][
            csenc.OUT_BASE:csenc.OUT_BASE + table.shape[0]]
        assert np.array_equal(out, reference)

    def test_row_table_validates_uniformity(self, rng):
        matrix = csenc.uniform_row_matrix(10, 50, 4, rng)
        matrix[0, np.flatnonzero(matrix[0])[0]] = 0.0
        with pytest.raises(ValueError, match="uniform-row"):
            csenc.row_table_from_matrix(matrix, 4)


class TestAcceleratorClaim:
    @pytest.fixture(scope="class")
    def comparison(self, nsr_record):
        window = nsr_record.lead(1).signal[500:1012]
        return run_cs_accelerator(window, nsr_record.fs)

    def test_instruction_count_collapses(self, comparison):
        base = comparison.sc_run.counters.total_instructions
        accel = comparison.mc_run.counters.total_instructions
        assert base > 4.0 * accel

    def test_processing_power_ratio(self, comparison):
        # Ref [19] reports >10x for a full accelerator (including the
        # memory path); the ISA extension alone buys ~3x dynamic power —
        # recorded honestly in EXPERIMENTS.md.
        assert comparison.processing_power_ratio > 2.5

    def test_total_power_still_improves(self, comparison):
        assert comparison.savings_percent > 0.0

    def test_dmem_traffic_unchanged(self, comparison):
        # The extension fuses computation, not memory: both variants read
        # index + sample per non-zero.
        base = comparison.sc_run.counters.dmem_private_accesses
        accel = comparison.mc_run.counters.dmem_private_accesses
        assert base == pytest.approx(accel, rel=0.02)
