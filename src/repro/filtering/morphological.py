"""Morphological ECG conditioning (Sun, Chan & Krishnan 2002, ref [9]).

Two cascaded stages built from flat-structuring-element erosion/dilation:

1. **Baseline correction** — the baseline is estimated by an opening (which
   shaves positive peaks) followed by a closing (which fills the negative
   pits), using structuring elements longer than any wave but shorter than
   the baseline-drift period; subtracting it removes the wander.
2. **Noise suppression** — the average of an open-close and a close-open
   pair with short structuring elements smooths impulsive/high-frequency
   noise while preserving wave edges better than linear low-pass filters.

Thanks to the flat structuring elements, all operators reduce to sliding
min/max windows (see :mod:`repro.dsp.windows`), the optimization that §IV-A
of the paper highlights for integer MCUs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.windows import closing, opening
from ..signals.types import EcgRecord, MultiLeadEcg


def _odd(width: int) -> int:
    """Force a structuring-element width to the next odd integer >= 1."""
    width = max(1, int(width))
    return width if width % 2 == 1 else width + 1


@dataclass(frozen=True)
class MorphologicalFilterConfig:
    """Structuring-element sizing for :class:`MorphologicalFilter`.

    Attributes:
        baseline_opening_s: SE length for the opening of the baseline
            estimator; must exceed the widest wave (QRS+T ~ 0.2 s).
        baseline_closing_ratio: Closing SE length as a multiple of the
            opening SE (Sun et al. use 1.5).
        noise_short_s: Short SE of the noise-suppression pair.
        noise_long_s: Long SE of the noise-suppression pair.
    """

    baseline_opening_s: float = 0.2
    baseline_closing_ratio: float = 1.5
    noise_short_s: float = 0.012
    noise_long_s: float = 0.020


class MorphologicalFilter:
    """The full two-stage morphological conditioner of ref [9].

    Args:
        fs: Sampling frequency in Hz.
        config: Structuring-element sizing (defaults follow the paper).
    """

    def __init__(self, fs: float,
                 config: MorphologicalFilterConfig | None = None) -> None:
        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        self.fs = fs
        self.config = config or MorphologicalFilterConfig()
        cfg = self.config
        self._b1 = _odd(cfg.baseline_opening_s * fs)
        self._b2 = _odd(cfg.baseline_opening_s * cfg.baseline_closing_ratio * fs)
        self._n1 = _odd(cfg.noise_short_s * fs)
        self._n2 = _odd(cfg.noise_long_s * fs)

    @property
    def structuring_lengths(self) -> tuple[int, int, int, int]:
        """SE lengths in samples: (baseline open, baseline close, short, long)."""
        return (self._b1, self._b2, self._n1, self._n2)

    def baseline(self, x: np.ndarray) -> np.ndarray:
        """Estimate the baseline: closing(opening(x, B1), B2)."""
        return closing(opening(x, self._b1), self._b2)

    def remove_baseline(self, x: np.ndarray) -> np.ndarray:
        """Subtract the morphological baseline estimate."""
        return np.asarray(x, dtype=float) - self.baseline(x)

    def suppress_noise(self, x: np.ndarray) -> np.ndarray:
        """Average of open-close and close-open with the short/long SE pair."""
        oc = closing(opening(x, self._n1), self._n2)
        co = opening(closing(x, self._n1), self._n2)
        return 0.5 * (oc + co)

    def condition(self, x: np.ndarray) -> np.ndarray:
        """Full conditioning: baseline removal then noise suppression."""
        return self.suppress_noise(self.remove_baseline(x))

    def condition_record(self, record: EcgRecord) -> EcgRecord:
        """Condition a single-lead record, preserving annotations."""
        return EcgRecord(record.fs, self.condition(record.signal),
                         list(record.beats), name=record.name)

    def condition_multilead(self, record: MultiLeadEcg) -> MultiLeadEcg:
        """Condition every lead of a multi-lead record."""
        conditioned = np.vstack([
            self.condition(record.signals[i]) for i in range(record.n_leads)
        ])
        return MultiLeadEcg(record.fs, conditioned, list(record.beats),
                            tuple(record.lead_names), name=record.name)

    def comparisons_per_sample(self) -> float:
        """Average comparator operations per sample (for energy estimates).

        With the monotonic-deque optimization each erosion/dilation costs
        an amortized ~2 comparisons per sample; the conditioner runs 12
        such passes (2 baseline ops x 2 passes each + 4 noise ops x 2).
        """
        passes = 2 * 2 + 4 * 2
        return 2.0 * passes
