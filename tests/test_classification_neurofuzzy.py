"""Unit tests for the neuro-fuzzy classifier and random projector."""

import numpy as np
import pytest

from repro.classification import NeuroFuzzyClassifier, RandomProjector


def _blobs(rng, n_per_class=120, spread=0.4):
    centers = {"a": np.array([0.0, 0.0, 0.0]),
               "b": np.array([3.0, 3.0, 0.0]),
               "c": np.array([0.0, 3.0, 3.0])}
    features, labels = [], []
    for label, center in centers.items():
        features.append(center + spread * rng.standard_normal(
            (n_per_class, 3)))
        labels.extend([label] * n_per_class)
    return np.vstack(features), np.array(labels)


class TestNeuroFuzzy:
    def test_separable_blobs(self, rng):
        X, y = _blobs(rng)
        clf = NeuroFuzzyClassifier().fit(X, y)
        assert np.mean(clf.predict(X) == y) > 0.98

    def test_pwl_matches_exact_on_blobs(self, rng):
        X, y = _blobs(rng)
        exact = NeuroFuzzyClassifier(membership="exact").fit(X, y)
        pwl = NeuroFuzzyClassifier(membership="pwl").fit(X, y)
        agreement = np.mean(exact.predict(X) == pwl.predict(X))
        assert agreement > 0.97

    def test_min_tnorm(self, rng):
        X, y = _blobs(rng)
        clf = NeuroFuzzyClassifier(tnorm="min").fit(X, y)
        assert np.mean(clf.predict(X) == y) > 0.95

    def test_priors_break_ties_towards_frequent_class(self, rng):
        X = np.vstack([np.zeros((90, 2)), np.zeros((10, 2))])
        X += 0.5 * rng.standard_normal(X.shape)
        y = np.array(["maj"] * 90 + ["min"] * 10)
        clf = NeuroFuzzyClassifier(use_priors=True).fit(X, y)
        predictions = clf.predict(np.zeros((50, 2)))
        assert np.mean(predictions == "maj") > 0.9

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="two classes"):
            NeuroFuzzyClassifier().fit(np.zeros((5, 2)), np.array(["a"] * 5))

    def test_unfitted_prediction_rejected(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            NeuroFuzzyClassifier().predict(np.zeros((2, 2)))

    def test_invalid_membership(self):
        with pytest.raises(ValueError, match="membership"):
            NeuroFuzzyClassifier(membership="spline")

    def test_invalid_tnorm(self):
        with pytest.raises(ValueError, match="tnorm"):
            NeuroFuzzyClassifier(tnorm="sum")

    def test_sigma_floor_prevents_degenerate_rules(self, rng):
        # One class is a single point (zero spread): the floor keeps its
        # memberships finite.
        X = np.vstack([np.tile([5.0, 5.0], (10, 1)),
                       rng.standard_normal((50, 2))])
        y = np.array(["point"] * 10 + ["cloud"] * 50)
        clf = NeuroFuzzyClassifier().fit(X, y)
        assert all(np.all(rule.sigmas > 0) for rule in clf.rules)
        assert set(clf.predict(X)) <= {"point", "cloud"}

    def test_activations_shape(self, rng):
        X, y = _blobs(rng)
        clf = NeuroFuzzyClassifier().fit(X, y)
        scores = clf.activations(X[:7])
        assert scores.shape == (7, 3)


class TestRandomProjector:
    def test_output_shapes(self, rng):
        projector = RandomProjector(window=100, k=16)
        single = projector.project(rng.standard_normal(100))
        batch = projector.project(rng.standard_normal((5, 100)))
        assert single.shape == (16,)
        assert batch.shape == (5, 16)

    def test_window_mismatch(self, rng):
        projector = RandomProjector(window=100, k=16)
        with pytest.raises(ValueError, match="expected windows"):
            projector.project(rng.standard_normal(64))

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown projection"):
            RandomProjector(100, 8, kind="fourier")

    def test_ternary_cost_has_no_multiplies(self):
        cost = RandomProjector(175, 24, kind="ternary").cost()
        assert cost.multiplications == 0
        assert cost.additions > 0

    def test_two_bit_storage(self):
        projector = RandomProjector(window=175, k=24, kind="ternary")
        cost = projector.cost()
        assert cost.storage_bytes == int(np.ceil(2 * 24 * 175 / 8))
        packed = projector.packed()
        assert packed.storage_bytes == pytest.approx(cost.storage_bytes,
                                                     abs=8)

    def test_gaussian_kind_costs_multiplies(self):
        cost = RandomProjector(175, 24, kind="gaussian").cost()
        assert cost.multiplications > 0

    def test_projection_deterministic_per_seed(self, rng):
        x = rng.standard_normal(100)
        a = RandomProjector(100, 8, seed=3).project(x)
        b = RandomProjector(100, 8, seed=3).project(x)
        assert np.array_equal(a, b)
