"""Analog compressed sensing / analog-to-information conversion (§III-A).

The paper: ""analog CS", where compression occurs directly in the analog
sensor readout electronics prior to analog-to-digital conversion, could be
of great importance ... although designing a truly CS-based A2I still
remains as a challenge" (refs [7][8]).

This module models such a random-demodulator readout: each measurement
channel multiplies the input by a ±1 chipping waveform and integrates over
the acquisition window; only the integrator outputs are digitized, at the
*measurement* rate instead of the Nyquist rate.  The analog non-idealities
that make A2I "a challenge" are explicit knobs:

* ``integrator_leak`` — per-sample decay of a lossy integrator;
* ``chip_jitter_s`` — timing jitter of the chipping-sequence edges;
* ``comparator_noise`` — input-referred noise of the analog chain;
* ``adc_bits`` — resolution of the slow output ADC.

With ideal settings the channel is *exactly* a dense ±1 sensing matrix, so
any digital decoder from :mod:`repro.compression.recovery` reconstructs
the window; the tests quantify how each non-ideality erodes that
equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .matrices import SensingMatrix


@dataclass(frozen=True)
class A2IConfig:
    """Non-ideality knobs of the analog front-end.

    Attributes:
        integrator_leak: Fraction of the accumulated value lost per input
            sample (0 = ideal integrator).
        chip_jitter_s: RMS jitter of chip transitions, seconds (moves
            chip edges relative to the signal samples).
        comparator_noise: Input-referred RMS noise added per sample, in
            input units.
        adc_bits: Output ADC resolution.
    """

    integrator_leak: float = 0.0
    chip_jitter_s: float = 0.0
    comparator_noise: float = 0.0
    adc_bits: int = 12

    def __post_init__(self) -> None:
        if not 0.0 <= self.integrator_leak < 1.0:
            raise ValueError("integrator_leak must lie in [0, 1)")
        if self.adc_bits < 2:
            raise ValueError("need at least 2 ADC bits")


class AnalogCsFrontEnd:
    """Random-demodulator A2I converter with ``m`` parallel channels.

    Args:
        n: Window length (input samples per acquisition).
        m: Measurement channels.
        fs: Input sampling rate (defines the chip period for jitter).
        config: Non-ideality knobs.
        seed: Chipping-sequence seed (shared with the receiver).
    """

    def __init__(self, n: int, m: int, fs: float = 250.0,
                 config: A2IConfig | None = None, seed: int = 23) -> None:
        if not 0 < m <= n:
            raise ValueError("require 0 < m <= n")
        self.n = n
        self.m = m
        self.fs = fs
        self.config = config or A2IConfig()
        rng = np.random.default_rng(seed)
        self.chips = rng.choice([-1.0, 1.0], size=(m, n))

    def nominal_sensing_matrix(self) -> SensingMatrix:
        """The ±1 matrix the receiver assumes (ideal-channel equivalent)."""
        return SensingMatrix(self.chips.copy(), kind="dense_sign")

    def acquire(self, window: np.ndarray,
                rng: np.random.Generator | None = None) -> np.ndarray:
        """Convert one analog window into ``m`` digitized measurements.

        Args:
            window: Input samples (the "analog" waveform at Nyquist rate).
            rng: Random generator for the stochastic non-idealities.

        Returns:
            Measurement vector of length ``m``.
        """
        window = np.asarray(window, dtype=float)
        if window.shape != (self.n,):
            raise ValueError(f"expected {self.n} samples, "
                             f"got {window.shape}")
        rng = rng or np.random.default_rng()
        cfg = self.config

        chips = self.chips
        if cfg.chip_jitter_s > 0.0:
            # Edge jitter: each channel's chip sequence is resampled at
            # jittered instants (nearest-sample model).
            jitter = rng.normal(0.0, cfg.chip_jitter_s * self.fs,
                                size=(self.m, self.n))
            indices = np.clip(np.arange(self.n)[None, :] + np.rint(jitter),
                              0, self.n - 1).astype(int)
            chips = np.take_along_axis(self.chips, indices, axis=1)

        signal = window[None, :]
        if cfg.comparator_noise > 0.0:
            signal = signal + rng.normal(0.0, cfg.comparator_noise,
                                         size=(self.m, self.n))

        if cfg.integrator_leak == 0.0:
            measurements = np.sum(chips * signal, axis=1)
        else:
            # Lossy integrator: acc <- (1 - leak) * acc + chip * x.
            retain = 1.0 - cfg.integrator_leak
            # Equivalent closed form: sum_i retain**(n-1-i) * chip_i x_i.
            weights = retain ** np.arange(self.n - 1, -1, -1)
            measurements = np.sum(chips * signal * weights[None, :], axis=1)

        return self._digitize(measurements)

    def _digitize(self, measurements: np.ndarray) -> np.ndarray:
        peak = float(np.max(np.abs(measurements)))
        if peak == 0.0:
            return measurements
        levels = 2 ** (self.config.adc_bits - 1) - 1
        scale = peak / levels
        return np.rint(measurements / scale) * scale

    def effective_matrix(self) -> np.ndarray:
        """The deterministic part of the actual channel (leak included).

        A leak-aware receiver can use this instead of the nominal matrix
        to undo the integrator droop — the calibration knob the tests
        exercise.
        """
        if self.config.integrator_leak == 0.0:
            return self.chips.copy()
        retain = 1.0 - self.config.integrator_leak
        weights = retain ** np.arange(self.n - 1, -1, -1)
        return self.chips * weights[None, :]


def nyquist_adc_energy(n: int, energy_per_conversion_j: float = 50e-9,
                       ) -> float:
    """Front-end energy of the conventional Nyquist path (n conversions)."""
    return n * energy_per_conversion_j


def a2i_energy(m: int, energy_per_conversion_j: float = 50e-9,
               integrator_power_w: float = 2e-6,
               window_s: float = 2.0) -> float:
    """Front-end energy of the A2I path: m slow conversions + integrators.

    The A2I argument of §III-A: digitizing only ``m`` measurements
    "removes a large part of the digital architecture"; the analog
    multiply-integrate chain costs standing power instead.
    """
    return m * energy_per_conversion_j + integrator_power_w * window_s
