"""Closed-loop EnergyGovernor: battery/acuity-adaptive operating modes.

The paper's Fig. 6 compares three *fixed* transmission strategies (raw
streaming, single-lead CS, multi-lead CS) and reports what each would
save.  A deployed wearable does not get to pick one forever: the battery
drains, patients deteriorate and recover, and the right strategy changes
mid-shift.  Related ultra-low-power monitors win their lifetime budgets
exactly here — by *switching* modes as the energy budget and the
clinical picture evolve (Hadizadeh et al. 2019; Deepu et al. 2014, both
in PAPERS.md).

This module turns the static Fig. 6 comparison into a policy:

* :data:`MODES` orders the four operating modes by fidelity (and,
  monotonically, by power): ``raw`` > ``multi_lead_cs`` >
  ``single_lead_cs`` > ``delineation_only`` (events-only uplink);
* :class:`ModePowerTable` prices each mode's average node power from
  the existing :class:`~repro.power.NodeEnergyModel` pieces plus the
  :class:`~repro.power.DutyCycledRadio` standing costs, so the numbers
  stay consistent with the Fig. 6 bars (which this module never touches);
* :class:`EnergyGovernor` picks a mode each batch interval from the
  battery state of charge (:class:`~repro.power.BatteryModel`), with
  hysteresis and a minimum dwell so modes don't thrash, and a
  gateway-fed triage *acuity floor*: ``alert`` patients stream
  high-fidelity regardless of budget, ``ok`` patients may coast on
  events-only when the battery runs low;
* :func:`simulate_lifetime` / :func:`compare_policies` measure simulated
  hours-to-empty per policy (the ``fleet-lifetime`` bench case).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..compression.encoder import CsEncoder, MultiLeadCsEncoder
from .battery import Battery, BatteryModel
from .dutycycle import DutyCycledRadio
from .node import NodeEnergyModel

#: Highest-fidelity mode: every raw sample of every lead over the air.
MODE_RAW = "raw"
#: All leads compressed with the joint-decoder operating point.
MODE_MULTI_LEAD_CS = "multi_lead_cs"
#: One lead compressed; the others stay on-node.
MODE_SINGLE_LEAD_CS = "single_lead_cs"
#: Events-only uplink: delineation verdicts and alarms, no waveforms.
MODE_EVENTS_ONLY = "delineation_only"

#: Operating modes ordered by descending fidelity (and power); the
#: governor expresses every preference as an index into this tuple.
MODES = (MODE_RAW, MODE_MULTI_LEAD_CS, MODE_SINGLE_LEAD_CS,
         MODE_EVENTS_ONLY)

#: Triage acuities the gateway feeds back, most severe first
#: (mirrors ``repro.fleet.triage.STATES`` without importing it —
#: power must stay importable without the fleet layer).
ACUITY_ALERT = "alert"
ACUITY_WATCH = "watch"
ACUITY_OK = "ok"


def mode_fidelity(mode: str) -> int:
    """Fidelity rank of a mode (0 = highest).  Raises on unknown mode."""
    try:
        return MODES.index(mode)
    except ValueError:
        raise ValueError(
            f"unknown mode {mode!r}; choose from {MODES}") from None


@dataclass(frozen=True)
class ModePowerTable:
    """Average node power per operating mode, Fig.6-consistent.

    Every mode pays the common standing costs — front-end acquisition of
    all leads, the RTOS tick, the always-on DSP chain (conditioning +
    delineation) and the radio's beacon-maintenance duty cycle — plus
    its own uplink payload (batched per
    :attr:`DutyCyclePolicy.batch_interval_s`) and, for the CS modes, the
    encoder's MCU cycles.  ``single_lead_cs`` still *acquires* every
    lead (delineation keeps running); only the uplink narrows.

    Args:
        node: The Fig. 6 node energy model (radio, MCU, front end).
        duty: Duty-cycling policy pricing maintenance and burst batching.
        window_n: CS window length in samples.
        cr_percent: CS operating point of both CS modes.
        dsp_cycles_per_sample: Always-on DSP chain cost (matches
            :class:`~repro.pipeline.CardiacMonitorNode`).
        events_bits_per_s: Events-only uplink rate (delineation verdicts
            at a resting heart rate; ~9 fiducials x 16 bit + label per
            beat).
    """

    node: NodeEnergyModel = field(default_factory=NodeEnergyModel)
    duty: DutyCycledRadio = field(default_factory=DutyCycledRadio)
    window_n: int = 256
    cr_percent: float = 60.0
    dsp_cycles_per_sample: float = 260.0
    events_bits_per_s: float = 190.0

    def common_power_w(self) -> float:
        """Standing power every mode pays (sampling + OS + DSP + beacon)."""
        node = self.node
        sampling = node.frontend.sampling_energy(
            int(round(node.fs)), node.n_leads, 1.0)
        os_power = node.mcu.rtos_energy(1.0)
        dsp = node.mcu.compute_energy(
            self.dsp_cycles_per_sample * node.fs * node.n_leads)
        return sampling + os_power + dsp + self.duty.maintenance_power_w()

    def payload_bits_per_s(self, mode: str) -> float:
        """Application uplink rate of one mode (bits per second)."""
        mode_fidelity(mode)
        node = self.node
        if mode == MODE_RAW:
            return node.n_leads * node.sample_bits * node.fs
        if mode == MODE_MULTI_LEAD_CS:
            encoder = self._ml_encoder()
            return encoder.payload_bits_per_window() / self._window_s()
        if mode == MODE_SINGLE_LEAD_CS:
            encoder = self._sl_encoder()
            return encoder.payload_bits_per_window() / self._window_s()
        return self.events_bits_per_s

    def compression_power_w(self, mode: str) -> float:
        """MCU power spent encoding in one mode."""
        node = self.node
        if mode == MODE_MULTI_LEAD_CS:
            adds = self._ml_encoder().additions_per_window()
        elif mode == MODE_SINGLE_LEAD_CS:
            adds = self._sl_encoder().sensing.additions_per_window()
        else:
            return 0.0
        cycles_per_s = adds * node.cycles_per_addition / self._window_s()
        return node.mcu.compute_energy(cycles_per_s)

    def power_w(self, mode: str) -> float:
        """Total average node power of one mode (memoized — building a
        CS encoder constructs its sensing matrices, which must not be
        paid per governor step)."""
        cache = self.__dict__.get("_power_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_power_cache", cache)
        if mode not in cache:
            radio = self.duty.payload_power_w(
                self.payload_bits_per_s(mode))
            cache[mode] = (self.common_power_w() + radio
                           + self.compression_power_w(mode))
        return cache[mode]

    def table(self) -> dict[str, float]:
        """Mode -> average power, for reports and examples."""
        return {mode: self.power_w(mode) for mode in MODES}

    def _window_s(self) -> float:
        return self.window_n / self.node.fs

    def _ml_encoder(self) -> MultiLeadCsEncoder:
        return MultiLeadCsEncoder(
            n_leads=self.node.n_leads, n=self.window_n,
            cr_percent=self.cr_percent, quant_bits=self.node.sample_bits)

    def _sl_encoder(self) -> CsEncoder:
        return CsEncoder(n=self.window_n, cr_percent=self.cr_percent,
                         quant_bits=self.node.sample_bits)


@dataclass(frozen=True)
class GovernorConfig:
    """Mode-selection policy: SoC floors, hysteresis, acuity overrides.

    Attributes:
        soc_floors: Minimum state of charge at which each mode may be
            *held*; scanning :data:`MODES` high-fidelity-first, the
            budget target is the first mode whose floor the SoC clears.
            Floors must be non-increasing along :data:`MODES` and the
            lowest-power mode's floor must be 0 (there is always a mode
            the battery affords).
        hysteresis_soc: Extra SoC headroom demanded before *upgrading*
            fidelity, so a mode boundary cannot be crossed back and
            forth by measurement jitter.
        min_dwell_s: Minimum time between mode switches.  Acuity-forced
            upgrades (a patient escalating to ``alert``) bypass the
            dwell — clinical urgency beats switch damping.
        acuity_floors: Triage acuity -> lowest fidelity allowed while
            the patient is in that state.  ``alert`` defaults to
            multi-lead CS streaming *regardless of budget*; unknown
            acuities fall back to events-only (no constraint).
    """

    soc_floors: dict[str, float] = field(default_factory=lambda: {
        MODE_RAW: 0.70,
        MODE_MULTI_LEAD_CS: 0.45,
        MODE_SINGLE_LEAD_CS: 0.20,
        MODE_EVENTS_ONLY: 0.0,
    })
    hysteresis_soc: float = 0.05
    min_dwell_s: float = 120.0
    acuity_floors: dict[str, str] = field(default_factory=lambda: {
        ACUITY_ALERT: MODE_MULTI_LEAD_CS,
        ACUITY_WATCH: MODE_SINGLE_LEAD_CS,
        ACUITY_OK: MODE_EVENTS_ONLY,
    })

    def __post_init__(self) -> None:
        if set(self.soc_floors) != set(MODES):
            raise ValueError(f"soc_floors must cover exactly {MODES}")
        floors = [self.soc_floors[mode] for mode in MODES]
        if any(b > a for a, b in zip(floors, floors[1:])):
            raise ValueError(
                "soc_floors must be non-increasing from raw to "
                "delineation_only")
        if floors[-1] != 0.0:
            raise ValueError("the lowest-power mode's floor must be 0")
        if self.hysteresis_soc < 0 or self.min_dwell_s < 0:
            raise ValueError("hysteresis and dwell must be non-negative")
        for acuity, mode in self.acuity_floors.items():
            mode_fidelity(mode)  # validates

    def acuity_floor_index(self, acuity: str) -> int:
        """Fidelity index the acuity demands (lowest allowed fidelity)."""
        return mode_fidelity(
            self.acuity_floors.get(acuity, MODE_EVENTS_ONLY))


@dataclass(frozen=True)
class GovernorDecision:
    """One batch-interval outcome of the governor.

    Attributes:
        t_s: Decision time (start of the interval).
        mode: Mode in force over the interval.
        prev_mode: Mode before this decision.
        switched: Whether this decision changed the mode.
        reason: Why: ``hold`` (no change wanted), ``dwell`` (change
            wanted but damped), ``budget`` (SoC-driven switch),
            ``acuity-floor`` (triage-forced upgrade) or
            ``battery-empty`` (end of discharge forces events-only).
        acuity: The triage acuity fed in.
        soc: State of charge *after* the interval's drain.
        power_w: Average node power charged over the interval.
    """

    t_s: float
    mode: str
    prev_mode: str
    switched: bool
    reason: str
    acuity: str
    soc: float
    power_w: float


class EnergyGovernor:
    """Per-node closed-loop mode controller.

    Each batch interval the caller feeds the current gateway acuity and
    the governor (1) picks an operating mode from the battery state of
    charge and the acuity floor, with hysteresis and dwell damping, and
    (2) drains the battery at that mode's power.  The decision history
    is kept for telemetry and reports.

    Args:
        config: Selection policy (floors, hysteresis, acuity overrides).
        table: Mode power table (Fig. 6-consistent pricing).
        battery: The stateful battery; defaults to a full standard cell.
        mode: Initial operating mode.
        now_s: Simulation clock origin.
    """

    def __init__(self, config: GovernorConfig | None = None,
                 table: ModePowerTable | None = None,
                 battery: BatteryModel | None = None,
                 mode: str = MODE_MULTI_LEAD_CS,
                 now_s: float = 0.0) -> None:
        self.config = config or GovernorConfig()
        self.table = table or ModePowerTable()
        self.battery = battery if battery is not None else BatteryModel()
        mode_fidelity(mode)  # validates
        self.mode = mode
        self.now_s = now_s
        self._last_switch_s = now_s
        self.decisions: list[GovernorDecision] = []
        self.mode_seconds: dict[str, float] = {m: 0.0 for m in MODES}
        #: Optional observer called with each completed
        #: :class:`GovernorDecision` at the end of :meth:`step` — the
        #: observability layer's attachment point.  Strictly
        #: out-of-band: the return value is ignored and the governor
        #: never consults it.  This module stays importable without the
        #: fleet layer, so the hook is a bare callable, not an
        #: Observability handle.
        self.on_decision = None

    @property
    def n_switches(self) -> int:
        """Mode changes taken so far."""
        return sum(1 for d in self.decisions if d.switched)

    def projected_hours_to_empty(self) -> float:
        """Hours until end of discharge if the current mode holds."""
        return self.battery.hours_to_empty(self.table.power_w(self.mode))

    def decide(self, now_s: float, acuity: str) -> tuple[str, str]:
        """Pick the mode for the interval starting at ``now_s``.

        Pure selection — no battery drain, no state change.  Returns
        ``(mode, reason)`` (see :class:`GovernorDecision` for reasons).
        """
        if self.battery.empty:
            return MODE_EVENTS_ONLY, "battery-empty"
        cfg = self.config
        soc = self.battery.soc
        cur_idx = mode_fidelity(self.mode)
        floor_idx = cfg.acuity_floor_index(acuity)
        budget_idx = len(MODES) - 1
        for idx, mode in enumerate(MODES):
            need = cfg.soc_floors[mode]
            if idx < cur_idx:  # upgrades must clear hysteresis headroom
                need += cfg.hysteresis_soc
            if soc >= need:
                budget_idx = idx
                break
        target_idx = min(budget_idx, floor_idx)
        if target_idx == cur_idx:
            return self.mode, "hold"
        # Any upgrade the acuity floor *demands* (patient escalated
        # above what the current mode serves) bypasses dwell damping —
        # even when the budget would take fidelity further still.
        forced_up = floor_idx < cur_idx
        if (not forced_up
                and now_s - self._last_switch_s < cfg.min_dwell_s):
            return self.mode, "dwell"
        return MODES[target_idx], "acuity-floor" if forced_up else "budget"

    def step(self, dt_s: float, acuity: str = ACUITY_OK,
             extra_load_w: float = 0.0) -> GovernorDecision:
        """Run one batch interval: decide, then drain the battery.

        Args:
            dt_s: Interval length.
            acuity: Gateway-fed triage acuity of this patient.
            extra_load_w: Parasitic drain on top of the mode power
                (scenario ``battery_drain`` faults).

        Returns:
            The decision record, with the post-interval state of charge.

        Raises:
            ValueError: ``dt_s`` is not positive, or ``extra_load_w``
                is negative or not finite — a NaN parasitic load from a
                corrupt ``battery_drain`` fault would otherwise
                silently drain the battery to zero and poison the
                hours-to-empty projection.
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        if not math.isfinite(extra_load_w) or extra_load_w < 0:
            raise ValueError("extra load must be a non-negative finite "
                             f"wattage, got {extra_load_w}")
        prev = self.mode
        mode, reason = self.decide(self.now_s, acuity)
        switched = mode != prev
        if switched:
            self._last_switch_s = self.now_s
            self.mode = mode
        power = self.table.power_w(mode) + extra_load_w
        soc = self.battery.drain(power, dt_s)
        self.mode_seconds[mode] = self.mode_seconds.get(mode, 0.0) + dt_s
        self.now_s += dt_s
        decision = GovernorDecision(
            t_s=self.now_s - dt_s, mode=mode, prev_mode=prev,
            switched=switched, reason=reason, acuity=acuity,
            soc=soc, power_w=power)
        self.decisions.append(decision)
        if self.on_decision is not None:
            self.on_decision(decision)
        return decision


@dataclass(frozen=True)
class LifetimeResult:
    """Outcome of one :func:`simulate_lifetime` run.

    Attributes:
        policy: ``"governor"`` or the static mode simulated.
        hours: Simulated hours until end of discharge (or the horizon,
            whichever came first — check :attr:`survived_horizon`).
        survived_horizon: The battery outlived the simulation horizon.
        n_switches: Mode changes taken (0 for static policies).
        mode_hours: Hours spent per mode.
        acuity_violation_hours: Hours during which the mode in force sat
            *below* the acuity floor — a static events-only policy
            "wins" lifetime only by ignoring alert patients, and this
            column is where that shows.
    """

    policy: str
    hours: float
    survived_horizon: bool
    n_switches: int
    mode_hours: dict[str, float]
    acuity_violation_hours: float


def simulate_lifetime(policy: str,
                      acuity_at,
                      table: ModePowerTable | None = None,
                      config: GovernorConfig | None = None,
                      cell: Battery | None = None,
                      step_s: float = 600.0,
                      horizon_s: float = 40.0 * 86400.0,
                      initial_soc: float = 1.0) -> LifetimeResult:
    """Simulate hours-to-empty of one policy under an acuity trace.

    Args:
        policy: ``"governor"`` for the closed loop, or a static mode
            from :data:`MODES` held for the whole run.
        acuity_at: ``fn(t_s) -> acuity`` — the patient's triage state
            over time (deterministic traces keep benches reproducible).
        table: Mode power table (default pricing if omitted).
        config: Governor policy (``"governor"`` only).
        cell: Battery cell spec (default small LiPo).
        step_s: Simulation step / governor batch interval.
        horizon_s: Simulation cap.
        initial_soc: Starting state of charge.

    Returns:
        The :class:`LifetimeResult`; ``hours`` is capped at the horizon.
    """
    table = table or ModePowerTable()
    config = config or GovernorConfig()
    battery = BatteryModel(cell=cell or Battery(), soc=initial_soc)
    if policy != "governor":
        mode_fidelity(policy)  # validates
    governor = (EnergyGovernor(config=config, table=table, battery=battery)
                if policy == "governor" else None)
    mode_seconds: dict[str, float] = {m: 0.0 for m in MODES}
    violation_s = 0.0
    t = 0.0
    while t < horizon_s and not battery.empty:
        acuity = acuity_at(t)
        if governor is not None:
            decision = governor.step(step_s, acuity)
            mode = decision.mode
        else:
            mode = policy
            battery.drain(table.power_w(mode), step_s)
        mode_seconds[mode] += step_s
        if mode_fidelity(mode) > config.acuity_floor_index(acuity):
            violation_s += step_s
        t += step_s
    return LifetimeResult(
        policy=policy,
        hours=t / 3600.0,
        survived_horizon=not battery.empty,
        n_switches=governor.n_switches if governor is not None else 0,
        mode_hours={m: s / 3600.0 for m, s in mode_seconds.items()},
        acuity_violation_hours=violation_s / 3600.0,
    )


def compare_policies(acuity_at,
                     table: ModePowerTable | None = None,
                     config: GovernorConfig | None = None,
                     cell: Battery | None = None,
                     step_s: float = 600.0,
                     horizon_s: float = 40.0 * 86400.0,
                     ) -> dict[str, LifetimeResult]:
    """Hours-to-empty of the governor versus every static mode.

    The interesting comparison is against the *admissible* static modes
    — those that never violate the acuity floor (for a cohort with alert
    episodes that means multi-lead CS or raw).  The governor must meet
    or beat the best admissible static lifetime; the inadmissible rows
    are reported with their violation hours so the trade is visible.
    """
    table = table or ModePowerTable()  # share one memoized pricing
    results = {"governor": simulate_lifetime(
        "governor", acuity_at, table=table, config=config, cell=cell,
        step_s=step_s, horizon_s=horizon_s)}
    for mode in MODES:
        results[mode] = simulate_lifetime(
            mode, acuity_at, table=table, config=config, cell=cell,
            step_s=step_s, horizon_s=horizon_s)
    return results


def mixed_acuity_trace(patient_index: int):
    """Deterministic daily acuity cycle of one mixed-cohort patient.

    Patient ``i`` has one ``alert`` episode of ``1 + (i % 3)`` hours per
    day starting at hour ``(5 * i) % 19``, followed by a two-hour
    ``watch`` tail; the rest of the day is ``ok``.  Pure function of
    ``(patient_index, t_s)`` — the fleet-lifetime bench and examples
    replay identically on every run.

    Returns:
        ``fn(t_s) -> acuity`` for :func:`simulate_lifetime`.
    """
    if patient_index < 0:
        raise ValueError("patient_index must be >= 0")
    alert_start_h = (5 * patient_index) % 19
    alert_len_h = 1 + (patient_index % 3)

    def acuity_at(t_s: float) -> str:
        hour = (t_s / 3600.0) % 24.0
        if alert_start_h <= hour < alert_start_h + alert_len_h:
            return ACUITY_ALERT
        if (alert_start_h + alert_len_h <= hour
                < alert_start_h + alert_len_h + 2.0):
            return ACUITY_WATCH
        return ACUITY_OK

    return acuity_at


def best_admissible_static(results: dict[str, LifetimeResult]) -> str:
    """The longest-lived static mode that never violated its acuity floor.

    Raises:
        ValueError: When no static mode is admissible (should not
            happen — raw always satisfies every floor).
    """
    return best_admissible_static_cohort([results])


def best_admissible_static_cohort(
        cohort_results: list[dict[str, LifetimeResult]]) -> str:
    """Cohort-level :func:`best_admissible_static`.

    A static mode is admissible only when it accumulates **zero**
    acuity-violation hours across *every* patient; among those, the one
    with the longest mean lifetime wins.  This is the single source of
    the admissibility rule — the fleet-lifetime bench and its legacy
    module both call it rather than re-deriving it.

    Raises:
        ValueError: On an empty cohort, or when no static mode is
            admissible (cannot happen with the builtin floors — raw
            satisfies every acuity).
    """
    if not cohort_results:
        raise ValueError("need at least one patient's results")
    admissible: list[tuple[float, str]] = []
    for mode in MODES:
        if any(r[mode].acuity_violation_hours > 0.0
               for r in cohort_results):
            continue
        mean_hours = (sum(r[mode].hours for r in cohort_results)
                      / len(cohort_results))
        admissible.append((mean_hours, mode))
    if not admissible:
        raise ValueError("no admissible static mode in results")
    return max(admissible)[1]
