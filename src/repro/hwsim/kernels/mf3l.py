"""3L-MF: three-lead morphological filtering kernel (Fig. 7, first app).

Computes the morphological open-close conditioning of ref [9] (trailing
erosion -> dilation -> dilation -> erosion, flat structuring element) on
each ECG lead.  The MC mapping gives each core one lead in its private
bank, all cores executing the identical program — the fully-SIMD case
where broadcast fetch merging is most effective.  The SC mapping runs the
same inner code in an outer lead loop on one core.

Register allocation (shared by the pass emitter):
    r1 = sample index, r2 = window offset, r3 = running extremum,
    r4/r5 = address temporaries, r6 = sample count, r7 = SE width,
    r8 = copy limit, r9 = pass input base, r10 = load temporary,
    r11 = output base, r12 = intermediate base, r13 = constants,
    r14 = lead base, r15 = lead index.
"""

from __future__ import annotations

import numpy as np

from ..assembler import Assembler
from ..isa import Instruction, Op
from .common import opening_reference, quantize_signal

def lead_stride(n_samples: int) -> int:
    """Words of private memory used per lead (input, scratch, output)."""
    return 3 * n_samples


def emit_extremum_pass(asm: Assembler, tag: str, op: Op, n_samples: int,
                       width: int) -> None:
    """Emit one trailing sliding-extremum pass.

    Expects r9 = input base, r11 = output base, r6 = n_samples,
    r7 = width (all preloaded).  Copies the warm-up prefix, then runs the
    windowed scan.  Control flow depends only on loop counters, so all
    cores stay aligned (SIMD-safe).
    """
    if width < 2:
        raise ValueError("structuring element must span >= 2 samples")
    asm.ldi(1, 0)
    asm.ldi(8, width - 1)
    asm.label(f"{tag}_copy")
    asm.add(4, 9, 1)
    asm.ld(10, 4)
    asm.add(5, 11, 1)
    asm.st(5, 10)
    asm.addi(1, 1, 1)
    asm.blt(1, 8, f"{tag}_copy")
    # Main loop: r1 == width - 1 on entry.
    asm.label(f"{tag}_main")
    asm.add(4, 9, 1)
    asm.ld(3, 4)
    asm.ldi(2, 1)
    asm.label(f"{tag}_inner")
    asm.sub(5, 4, 2)
    asm.ld(10, 5)
    asm.emit(op, rd=3, rs1=3, rs2=10)
    asm.addi(2, 2, 1)
    asm.blt(2, 7, f"{tag}_inner")
    asm.add(5, 11, 1)
    asm.st(5, 3)
    asm.addi(1, 1, 1)
    asm.blt(1, 6, f"{tag}_main")


def build_mf_kernel(n_samples: int, width: int,
                    n_leads_loop: int) -> list[Instruction]:
    """Build the 3L-MF program.

    Args:
        n_samples: Samples per lead.
        width: Structuring-element width.
        n_leads_loop: Leads processed by *this core* (SC: 3, MC: 1).
    """
    asm = Assembler()
    stride = lead_stride(n_samples)
    asm.ldi(15, 0)
    asm.label("lead")
    asm.ldi(13, stride)
    asm.mul(14, 15, 13)
    asm.ldi(6, n_samples)
    asm.ldi(7, width)
    # Opening: erosion (base -> base+n) then dilation (base+n -> base+2n).
    asm.mov(9, 14)
    asm.addi(11, 14, n_samples)
    emit_extremum_pass(asm, "open_ero", Op.MIN, n_samples, width)
    asm.addi(9, 14, n_samples)
    asm.addi(11, 14, 2 * n_samples)
    emit_extremum_pass(asm, "open_dil", Op.MAX, n_samples, width)
    # Closing of the opening: dilation (base+2n -> base+n, reusing the
    # scratch buffer) then erosion (base+n -> base+2n, final output).
    asm.addi(9, 14, 2 * n_samples)
    asm.addi(11, 14, n_samples)
    emit_extremum_pass(asm, "close_dil", Op.MAX, n_samples, width)
    asm.addi(9, 14, n_samples)
    asm.addi(11, 14, 2 * n_samples)
    emit_extremum_pass(asm, "close_ero", Op.MIN, n_samples, width)
    asm.addi(15, 15, 1)
    asm.ldi(13, n_leads_loop)
    asm.blt(15, 13, "lead")
    asm.halt()
    return asm.assemble()


def prepare_memories(signals: np.ndarray, single_core: bool,
                     ) -> list[np.ndarray]:
    """Private-bank initial contents for the SC or MC mapping.

    Args:
        signals: Float waveforms, shape ``(n_leads, n_samples)``.
        single_core: SC packs every lead into core 0's bank; MC gives
            each core its own lead at address 0.
    """
    quantized = [quantize_signal(signals[i]) for i in range(signals.shape[0])]
    n = signals.shape[1]
    if single_core:
        bank = np.zeros(lead_stride(n) * signals.shape[0], dtype=np.int64)
        for lead, data in enumerate(quantized):
            base = lead * lead_stride(n)
            bank[base:base + n] = data
        return [bank]
    return [data.copy() for data in quantized]


def extract_outputs(private_memories: list[np.ndarray], n_samples: int,
                    n_leads: int, single_core: bool) -> np.ndarray:
    """Read back the per-lead opening results from the final memories."""
    out = np.zeros((n_leads, n_samples), dtype=np.int64)
    for lead in range(n_leads):
        if single_core:
            base = lead * lead_stride(n_samples) + 2 * n_samples
            out[lead] = private_memories[0][base:base + n_samples]
        else:
            out[lead] = private_memories[lead][
                2 * n_samples:3 * n_samples]
    return out


def reference_outputs(signals: np.ndarray, width: int) -> np.ndarray:
    """NumPy reference the simulator results must match exactly."""
    from .common import trailing_extremum

    rows = []
    for i in range(signals.shape[0]):
        opened = opening_reference(quantize_signal(signals[i]), width)
        closed = trailing_extremum(
            trailing_extremum(opened, width, "max"), width, "min")
        rows.append(closed)
    return np.vstack(rows)
