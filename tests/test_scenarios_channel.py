"""Tests for the deterministic lossy uplink channel model."""


from repro.fleet import PACKET_ALARM, PACKET_EXCERPT, UplinkPacket
from repro.scenarios import ImpairedLink, LinkSpec


def packet(seq, kind=PACKET_EXCERPT, ts=None, patient="p0000"):
    """A minimal uplink packet (frames irrelevant for the channel)."""
    return UplinkPacket(
        patient_id=patient, seq=seq,
        timestamp_s=float(seq) if ts is None else ts,
        kind=kind, start=0, frames=(), payload_bits=64, n_leads=1,
        window_n=256, cr_percent=60.0, quant_bits=12, cs_seed=11,
        fs=250.0)


def pump(link, packets, dt=1.0):
    """Send packets one per tick; collect every delivery in order."""
    delivered = []
    for i, pkt in enumerate(packets):
        now = i * dt
        delivered.extend(link.send(pkt, now))
        delivered.extend(link.due(now))
    delivered.extend(link.drain())
    return delivered


class TestPerfectLink:
    def test_passthrough(self):
        link = ImpairedLink(LinkSpec(), seed=1)
        packets = [packet(i) for i in range(10)]
        assert pump(link, packets) == packets
        assert link.stats["delivered"] == 10
        assert link.stats["lost"] == 0


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        spec = LinkSpec(loss_rate=0.3, duplicate_rate=0.2,
                        reorder_rate=0.2, jitter_s=3.0)
        packets = [packet(i) for i in range(60)]
        one = pump(ImpairedLink(spec, seed=5), packets)
        two = pump(ImpairedLink(spec, seed=5), packets)
        assert [p.seq for p in one] == [p.seq for p in two]

    def test_different_seed_different_outcome(self):
        spec = LinkSpec(loss_rate=0.3, duplicate_rate=0.2, jitter_s=3.0)
        packets = [packet(i) for i in range(60)]
        one = pump(ImpairedLink(spec, seed=5), packets)
        two = pump(ImpairedLink(spec, seed=6), packets)
        assert [p.seq for p in one] != [p.seq for p in two]


class TestLoss:
    def test_loss_rate_approximate(self):
        link = ImpairedLink(LinkSpec(loss_rate=0.2), seed=9)
        packets = [packet(i) for i in range(500)]
        delivered = pump(link, packets)
        assert link.stats["lost"] == 500 - len(delivered)
        assert 0.12 < link.stats["lost"] / 500 < 0.28

    def test_alarms_never_lost(self):
        link = ImpairedLink(LinkSpec(loss_rate=0.5), seed=9)
        packets = [packet(i, kind=PACKET_ALARM) for i in range(200)]
        delivered = pump(link, packets)
        assert sorted(p.seq for p in delivered) == list(range(200))
        assert link.stats["lost"] == 0
        assert link.stats["retransmissions"] > 0

    def test_lost_alarm_is_delayed_not_dropped(self):
        link = ImpairedLink(LinkSpec(loss_rate=0.9, alarm_retx_delay_s=5.0),
                            seed=3)
        pkt = packet(0, kind=PACKET_ALARM)
        immediate = link.send(pkt, now_s=0.0)
        if not immediate:
            assert link.in_flight == 1
            assert link.due(now_s=1e9) == [pkt]

    def test_alarm_retx_bounded(self):
        spec = LinkSpec(loss_rate=0.9, alarm_retx_delay_s=5.0,
                        max_alarm_retx=4)
        link = ImpairedLink(spec, seed=3)
        immediate = []
        for i in range(100):
            immediate.extend(
                link.send(packet(i, kind=PACKET_ALARM, ts=0.0), now_s=0.0))
        # Worst case: every alarm waits max_alarm_retx rounds (no jitter
        # configured), so everything lands by 4 * 5 s.
        late = link.due(now_s=4 * 5.0)
        assert link.in_flight == 0
        assert len(immediate) + len(late) == 100


class TestDuplication:
    def test_duplicates_counted_and_delivered(self):
        link = ImpairedLink(LinkSpec(duplicate_rate=0.5), seed=2)
        packets = [packet(i) for i in range(200)]
        delivered = pump(link, packets)
        assert link.stats["duplicated"] > 50
        assert len(delivered) == 200 + link.stats["duplicated"]


class TestReorderingAndJitter:
    def test_jitter_delays_bounded(self):
        link = ImpairedLink(LinkSpec(jitter_s=4.0), seed=8)
        immediate = []
        for i in range(50):
            immediate.extend(link.send(packet(i, ts=0.0), now_s=0.0))
        # Everything must be delivered within the jitter bound.
        late = link.due(now_s=4.0)
        assert link.in_flight == 0
        assert len(immediate) + len(late) == 50

    def test_reordering_occurs(self):
        link = ImpairedLink(LinkSpec(reorder_rate=0.3,
                                     reorder_delay_s=10.0), seed=4)
        packets = [packet(i) for i in range(100)]
        delivered = pump(link, packets, dt=1.0)
        seqs = [p.seq for p in delivered]
        assert sorted(seqs) == list(range(100))  # nothing lost
        assert seqs != sorted(seqs)  # ... but order was broken
        assert link.stats["reordered"] > 0

    def test_drain_returns_in_delivery_order(self):
        link = ImpairedLink(LinkSpec(jitter_s=30.0), seed=6)
        for i in range(20):
            link.send(packet(i, ts=0.0), now_s=0.0)
        # Expected order: the pending heap sorted by
        # (deliver_at, patient, seq, order).
        expected = [entry[-1].seq for entry in sorted(link._pending)]
        drained = link.drain()
        assert link.in_flight == 0
        assert [p.seq for p in drained] == expected
        assert len(set(expected)) == 20  # jitter actually delayed all

    def test_equal_timestamp_deliveries_sort_by_patient_then_seq(self):
        # Two packets landing at the same virtual instant must come out
        # in (patient_id, seq) order, not insertion order — the event
        # kernel schedules deliveries at their due times, so the heap's
        # tie-break is part of the determinism contract.
        link = ImpairedLink(LinkSpec(), seed=0)
        # Bypass the impairment draws: seed the pending heap directly
        # with four same-instant deliveries inserted "backwards".
        for pid, seq in [("p0001", 7), ("p0001", 2),
                         ("p0000", 9), ("p0000", 1)]:
            link._deliver(packet(seq, ts=0.0, patient=pid),
                          now_s=0.0, delay=5.0, immediate=[])
        out = [(p.patient_id, p.seq) for p in link.due(now_s=5.0)]
        assert out == [("p0000", 1), ("p0000", 9),
                       ("p0001", 2), ("p0001", 7)]

    def test_duplicate_copies_tie_break_by_insertion_order(self):
        # Same (t, patient, seq) — only a duplicated packet can do
        # this — falls back to insertion order, keeping heap
        # comparisons away from the (uncomparable) packets themselves.
        link = ImpairedLink(LinkSpec(), seed=0)
        first = packet(3)
        link._deliver(first, now_s=0.0, delay=2.0, immediate=[])
        link._deliver(packet(3), now_s=0.0, delay=2.0, immediate=[])
        out = link.due(now_s=2.0)
        assert [p.seq for p in out] == [3, 3]
        assert out[0] is first

    def test_next_due_s_tracks_pending_head(self):
        link = ImpairedLink(LinkSpec(), seed=0)
        assert link.next_due_s() is None
        link._deliver(packet(1), now_s=0.0, delay=8.0, immediate=[])
        link._deliver(packet(0), now_s=0.0, delay=3.0, immediate=[])
        assert link.next_due_s() == 3.0
        link.due(now_s=3.0)
        assert link.next_due_s() == 8.0
        link.drain()
        assert link.next_due_s() is None
