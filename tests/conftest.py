"""Shared fixtures: session-scoped synthetic records and corpora.

Synthesis is deterministic per seed, so session scope trades memory for a
large test-time saving without coupling tests (records are never mutated;
tests that need to modify data copy first).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals import RecordSpec, make_corpus, make_record


@pytest.fixture(scope="session")
def nsr_record():
    """30 s clean-ish normal sinus rhythm record (SNR 25 dB)."""
    return make_record(RecordSpec(name="nsr", duration_s=30.0, snr_db=25.0,
                                  seed=3))


@pytest.fixture(scope="session")
def noisy_record():
    """30 s normal sinus rhythm record at 20 dB SNR."""
    return make_record(RecordSpec(name="nsr20", duration_s=30.0,
                                  snr_db=20.0, seed=11))


@pytest.fixture(scope="session")
def clean_record():
    """40 s noise-free record (CS and fixed-point references)."""
    return make_record(RecordSpec(name="clean", duration_s=40.0,
                                  snr_db=None, seed=5))


@pytest.fixture(scope="session")
def af_record():
    """30 s atrial-fibrillation record at 18 dB SNR."""
    return make_record(RecordSpec(name="af", duration_s=30.0, rhythm="af",
                                  snr_db=18.0, seed=7))


@pytest.fixture(scope="session")
def ectopy_record():
    """60 s record with 10 % PVCs and 8 % APCs at 20 dB SNR."""
    return make_record(RecordSpec(name="ect", duration_s=60.0, snr_db=20.0,
                                  pvc_fraction=0.10, apc_fraction=0.08,
                                  seed=21))


@pytest.fixture(scope="session")
def ectopy_corpus():
    """Small ectopy corpus for classification tests."""
    return make_corpus("ectopy", n_records=4, duration_s=60.0, seed=42)


@pytest.fixture(scope="session")
def af_train_corpus():
    """Paroxysmal-AF corpus for AF-detector training."""
    return make_corpus("af_mix", n_records=3, duration_s=120.0, seed=1)


@pytest.fixture(scope="session")
def af_test_corpus():
    """Held-out paroxysmal-AF corpus for AF-detector evaluation."""
    return make_corpus("af_mix", n_records=3, duration_s=120.0, seed=2)


@pytest.fixture(scope="session")
def trained_af_detector(af_train_corpus):
    """Fleet-shared AF detector (trained once per session)."""
    from repro.classification import AfDetector

    return AfDetector().fit(list(af_train_corpus))


@pytest.fixture()
def rng():
    """Fresh deterministic random generator per test."""
    return np.random.default_rng(1234)
