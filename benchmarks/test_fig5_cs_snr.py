"""Fig. 5 — averaged reconstruction SNR vs. compression ratio.

Paper: single-lead CS reaches the 20 dB "good quality" level at
CR = 65.9 %, multi-lead (joint) CS at CR = 72.7 %; the multi-lead curve
dominates.  Shape criteria asserted: SNR falls with CR for both curves,
the ML curve beats SL at high CR, and its 20 dB crossing is strictly
higher.  Absolute crossings differ from the paper (synthetic corpus vs.
MIT-BIH); EXPERIMENTS.md records both.
"""

from __future__ import annotations

import numpy as np

from conftest import print_table
from repro.compression import (
    CsDecoder,
    CsEncoder,
    JointCsDecoder,
    MultiLeadCsEncoder,
    TreeCsDecoder,
    reconstruction_snr_db,
    snr_crossing_cr,
    sparse_binary_matrix,
)

WINDOW = 512
CRS = (40.0, 50.0, 55.0, 60.0, 65.0, 70.0, 75.0, 80.0, 85.0)
START_OFFSET = 500  # skip the synthesis lead-in
WINDOWS_PER_RECORD = 10


def _windows(record):
    sig = record.signals
    n_avail = (sig.shape[1] - START_OFFSET) // WINDOW
    for w in range(min(n_avail, WINDOWS_PER_RECORD)):
        lo = START_OFFSET + w * WINDOW
        yield sig[:, lo:lo + WINDOW]


def sweep(corpus) -> dict[str, np.ndarray]:
    """Run the full Fig. 5 sweep; returns the two SNR curves."""
    sl_curve, ml_curve = [], []
    for cr in CRS:
        sl_encoder = CsEncoder(n=WINDOW, cr_percent=cr, seed=3)
        sl_decoder = CsDecoder(sl_encoder.sensing)
        ml_encoder = MultiLeadCsEncoder(n_leads=3, n=WINDOW, cr_percent=cr,
                                        seed=100)
        ml_decoder = JointCsDecoder(ml_encoder.sensing_matrices)
        sl_values, ml_values = [], []
        for record in corpus:
            for seg in _windows(record):
                encoded = sl_encoder.encode(seg[1])
                sl_values.append(reconstruction_snr_db(
                    seg[1], sl_decoder.recover(encoded).window))
                recovery = ml_decoder.recover(ml_encoder.encode(seg))
                ml_values.append(np.mean([
                    reconstruction_snr_db(seg[lead], recovery.windows[lead])
                    for lead in range(3)
                ]))
        sl_curve.append(float(np.mean(sl_values)))
        ml_curve.append(float(np.mean(ml_values)))
    return {"cr": np.array(CRS), "sl": np.array(sl_curve),
            "ml": np.array(ml_curve)}


def test_fig5_snr_vs_cr(benchmark, cs_corpus):
    curves = benchmark.pedantic(sweep, args=(cs_corpus,), rounds=1,
                                iterations=1)
    sl_cross = snr_crossing_cr(curves["cr"], curves["sl"])
    ml_cross = snr_crossing_cr(curves["cr"], curves["ml"])
    rows = [(f"{cr:.0f}", sl, ml)
            for cr, sl, ml in zip(curves["cr"], curves["sl"], curves["ml"])]
    rows.append(("20dB-crossing", sl_cross, ml_cross))
    print_table("Fig. 5: averaged SNR [dB] over all records vs CR [%] "
                "(paper crossings: SL 65.9, ML 72.7)",
                ["CR", "Single-Lead CS", "Multi-Lead CS"], rows)

    # Shape criteria (DESIGN.md §3).
    sl, ml = curves["sl"], curves["ml"]
    assert sl[0] > sl[-1] and ml[0] > ml[-1]          # SNR falls with CR
    high = curves["cr"] >= 60.0
    assert np.all(ml[high] >= sl[high] - 0.5)          # ML dominates SL
    assert not np.isnan(sl_cross) and not np.isnan(ml_cross)
    assert ml_cross > sl_cross + 3.0                   # crossing gap


def _density_ablation(corpus) -> list[tuple]:
    """§IV-A claim: few non-zeros per column suffice."""
    rows = []
    record = corpus.records[0]
    segments = [seg[1] for seg in _windows(record)][:6]
    for d in (2, 4, 8, 12, 24):
        matrix = sparse_binary_matrix(WINDOW // 2, WINDOW, d,
                                      np.random.default_rng(5))
        decoder = CsDecoder(matrix)
        snr = float(np.mean([
            reconstruction_snr_db(seg,
                                  decoder.recover(matrix.matrix @ seg).window)
            for seg in segments
        ]))
        rows.append((d, snr, matrix.additions_per_window()))
    return rows


def test_matrix_density_ablation(benchmark, cs_corpus):
    rows = benchmark.pedantic(_density_ablation, args=(cs_corpus,),
                              rounds=1, iterations=1)
    print_table("Fig. 5 ablation: sensing-matrix density d at CR 50 % "
                "(mean over 6 windows)",
                ["d (ones/col)", "SNR [dB]", "adds/window"], rows)
    snrs = {d: snr for d, snr, _ in rows}
    # §IV-A / [16]: few non-zeros achieve close-to-optimal results —
    # the sparse designs (d <= 12) are at least as good as the densest
    # one, at a fraction of the encoder cost.
    for d in (4, 8, 12):
        assert snrs[d] > snrs[24] - 1.0, d
    # The node-side cost grows linearly with d (the reason to keep it low).
    adds = {d: a for d, _, a in rows}
    assert adds[24] == 6 * adds[4]


def _tree_ablation(corpus) -> list[tuple]:
    """§IV-A structure claim: the connected-tree model vs plain l1."""
    record = corpus.records[0]
    segments = [seg[1] for seg in _windows(record)][:6]
    rows = []
    for cr in (55.0, 70.0):
        encoder = CsEncoder(n=WINDOW, cr_percent=cr, seed=3)
        l1 = CsDecoder(encoder.sensing)
        tree = TreeCsDecoder(encoder.sensing)
        l1_snr = float(np.mean([
            reconstruction_snr_db(seg, l1.recover(encoder.encode(seg)).window)
            for seg in segments]))
        tree_snr = float(np.mean([
            reconstruction_snr_db(seg,
                                  tree.recover(encoder.encode(seg)).window)
            for seg in segments]))
        rows.append((f"{cr:.0f}", l1_snr, tree_snr))
    return rows


def test_tree_structured_ablation(benchmark, cs_corpus):
    rows = benchmark.pedantic(_tree_ablation, args=(cs_corpus,), rounds=1,
                              iterations=1)
    print_table("Fig. 5 ablation: connected-tree model (ref [17]) vs l1",
                ["CR [%]", "l1 SNR [dB]", "tree SNR [dB]"], rows)
    # The tree prior stays competitive everywhere (the §IV-A argument is
    # about rejecting isolated artifacts, not raw SNR dominance).
    for _, l1_snr, tree_snr in rows:
        assert tree_snr > l1_snr - 3.0
