"""Signal-domain fault injection into synthesized recordings.

Takes the clean output of :func:`repro.fleet.synthesize_patient` and
applies the timed :class:`~repro.scenarios.FaultEvent` episodes of a
scenario: motion-artifact bursts and baseline-wander episodes reuse the
calibrated generators of :mod:`repro.signals.noise`; lead-off flattens
the affected lead to the electrode-open residual; saturation clips to
the front-end rails.  Ground-truth beat annotations are left untouched —
that is the point: the campaign scores what the chain still detects when
the waveform underneath the annotations degrades.
"""

from __future__ import annotations

import numpy as np

from ..signals.noise import baseline_wander, electrode_motion, muscle_artifact
from ..signals.types import MultiLeadEcg
from .spec import (
    FAULT_LEAD_OFF,
    FAULT_MOTION,
    FAULT_SATURATION,
    FAULT_WANDER,
    SIGNAL_FAULT_KINDS,
    FaultEvent,
)

#: Residual noise on a detached lead (open electrode, mV RMS).
LEAD_OFF_RESIDUAL_MV = 0.01


def apply_faults(record: MultiLeadEcg,
                 faults: tuple[FaultEvent, ...] | list[FaultEvent],
                 rng: np.random.Generator) -> MultiLeadEcg:
    """Return a copy of ``record`` with every fault episode applied.

    Args:
        record: The clean synthesized recording.
        faults: Episodes to inject (applied in the given order).
            Node-state faults (``battery_drain``, ``governor_stress``)
            do not touch the waveform and are skipped here — the
            governed scheduler consumes them instead.
        rng: Seeded generator — same record + faults + seed replays the
            exact same corrupted waveform.
    """
    faults = [f for f in faults if f.kind in SIGNAL_FAULT_KINDS]
    if not faults:
        return record
    signals = record.signals.copy()
    fs = record.fs
    n_samples = signals.shape[1]
    for fault in faults:
        lo = int(round(fault.start_s * fs))
        hi = int(round(fault.stop_s * fs))
        lo, hi = max(0, lo), min(n_samples, hi)
        if hi - lo < 2:
            continue
        leads = _lead_indices(fault, signals.shape[0])
        _apply_one(signals, fault, leads, lo, hi, fs, rng)
    return MultiLeadEcg(
        fs=record.fs,
        signals=signals,
        beats=record.beats,
        lead_names=record.lead_names,
        name=record.name,
    )


def _lead_indices(fault: FaultEvent, n_leads: int) -> list[int]:
    if fault.lead is None:
        return list(range(n_leads))
    return [min(fault.lead, n_leads - 1)]


def _apply_one(signals: np.ndarray, fault: FaultEvent, leads: list[int],
               lo: int, hi: int, fs: float,
               rng: np.random.Generator) -> None:
    span = hi - lo
    if fault.kind == FAULT_MOTION:
        # A dense electrode-motion episode with its EMG component, as
        # during walking/arm movement; independent waveform per lead.
        for lead in leads:
            burst = electrode_motion(span, fs, rng,
                                     amplitude_mv=fault.severity,
                                     events_per_minute=40.0)
            burst += muscle_artifact(span, fs, rng,
                                     amplitude_mv=0.3 * fault.severity)
            signals[lead, lo:hi] += _ramped(burst, fs)
    elif fault.kind == FAULT_WANDER:
        for lead in leads:
            wander = baseline_wander(span, fs, rng,
                                     amplitude_mv=fault.severity)
            signals[lead, lo:hi] += _ramped(wander, fs)
    elif fault.kind == FAULT_LEAD_OFF:
        for lead in leads:
            signals[lead, lo:hi] = LEAD_OFF_RESIDUAL_MV * \
                rng.standard_normal(span)
    elif fault.kind == FAULT_SATURATION:
        rail = fault.severity
        for lead in leads:
            np.clip(signals[lead, lo:hi], -rail, rail,
                    out=signals[lead, lo:hi])
    else:  # pragma: no cover - spec validation rejects unknown kinds
        raise ValueError(f"unknown fault kind {fault.kind!r}")


def _ramped(segment: np.ndarray, fs: float,
            ramp_s: float = 0.25) -> np.ndarray:
    """Fade an additive episode in/out to avoid step discontinuities."""
    n = segment.shape[0]
    ramp = min(n // 2, max(2, int(ramp_s * fs)))
    window = np.ones(n)
    edge = 0.5 * (1.0 - np.cos(np.pi * np.arange(ramp) / ramp))
    window[:ramp] = edge
    window[n - ramp:] = edge[::-1]
    return segment * window
