"""Adaptive impulse-correlated filtering (Laguna et al. 1992, refs [22][23]).

AICF is an LMS adaptive filter whose reference input is a unit impulse
train synchronized with the signal occurrences (the ECG R peaks).  With a
window of weights ``w`` spanning one beat, the LMS update per occurrence k

    w <- w + 2 * mu * (x_k - w)

converges to the ensemble average for small ``mu`` but — unlike plain EA —
keeps adapting, so it *tracks beat-to-beat dynamics* (the property §IV-C
highlights over ensemble averaging).  ``mu = 1/(2k)`` exactly reproduces
the cumulative ensemble average, a correspondence the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .ensemble import beat_matrix


@dataclass
class AicfResult:
    """Output of :func:`aicf_filter`.

    Attributes:
        estimates: Per-occurrence filtered windows, shape ``(K, window)``;
            row k is the filter state *after* processing occurrence k.
        filtered: Signal reconstruction with each window replaced by its
            running estimate (samples outside windows pass through).
        impulses: The impulse indices actually used (complete windows).
    """

    estimates: np.ndarray
    filtered: np.ndarray
    impulses: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))


def aicf_filter(signal: np.ndarray, impulses: np.ndarray, before: int,
                after: int, mu: float = 0.1,
                initial: np.ndarray | None = None) -> AicfResult:
    """Run the AICF over a signal given its impulse (R-peak) train.

    Args:
        signal: Input waveform (ECG or PPG).
        impulses: Occurrence sample indices (typically detected R peaks,
            optionally shifted by a fixed latency for PPG).
        before: Window samples before each impulse.
        after: Window samples after each impulse.
        mu: LMS step size; ``0 < 2*mu <= 1``.  Larger values track faster
            but filter less.
        initial: Initial weight vector (zeros if omitted).

    Returns:
        An :class:`AicfResult`.

    Raises:
        ValueError: If ``mu`` is out of range or no window is complete.
    """
    if not 0.0 < 2.0 * mu <= 1.0:
        raise ValueError("require 0 < 2*mu <= 1 for stable convergence")
    signal = np.asarray(signal, dtype=float)
    n = signal.shape[0]
    window = before + after
    usable = np.array([
        i for i in np.asarray(impulses, dtype=int)
        if i - before >= 0 and i + after <= n
    ], dtype=int)
    if usable.shape[0] == 0:
        raise ValueError("no impulse admits a complete window")

    weights = np.zeros(window) if initial is None else np.array(initial, dtype=float)
    if weights.shape[0] != window:
        raise ValueError("initial weights must match the window length")

    estimates = np.empty((usable.shape[0], window))
    filtered = signal.copy()
    for k, center in enumerate(usable):
        x_k = signal[center - before:center + after]
        weights = weights + 2.0 * mu * (x_k - weights)
        estimates[k] = weights
        filtered[center - before:center + after] = weights
    return AicfResult(estimates=estimates, filtered=filtered, impulses=usable)


def aicf_convergence_curve(signal: np.ndarray, clean: np.ndarray,
                           impulses: np.ndarray, before: int, after: int,
                           mu: float = 0.1) -> np.ndarray:
    """Per-beat RMS error of the AICF estimate versus the clean reference.

    Used by the T5 benchmark to show the convergence/tracking trade-off
    against ensemble averaging.
    """
    result = aicf_filter(signal, impulses, before, after, mu=mu)
    reference = beat_matrix(clean, result.impulses, before, after)
    errors = result.estimates - reference
    return np.sqrt(np.mean(errors ** 2, axis=1))


def tracking_gain_vs_ea(signal: np.ndarray, clean: np.ndarray,
                        impulses: np.ndarray, before: int, after: int,
                        mu: float = 0.15) -> tuple[float, float]:
    """Compare AICF and EA tracking error on a *dynamic* signal.

    Returns:
        ``(rms_error_aicf, rms_error_ea)`` over the second half of the
        occurrences (after AICF convergence).  When the underlying beats
        drift, EA's static template accumulates bias while AICF follows,
        so the first value should be smaller — the §IV-C claim.
    """
    result = aicf_filter(signal, impulses, before, after, mu=mu)
    reference = beat_matrix(clean, result.impulses, before, after)
    noisy = beat_matrix(signal, result.impulses, before, after)
    half = reference.shape[0] // 2
    ea_template = noisy.mean(axis=0)
    err_aicf = float(np.sqrt(np.mean(
        (result.estimates[half:] - reference[half:]) ** 2)))
    err_ea = float(np.sqrt(np.mean(
        (ea_template[None, :] - reference[half:]) ** 2)))
    return err_aicf, err_ea
