"""Unit tests for the 802.15.4 radio/MAC energy model."""

import pytest

from repro.power import (
    Ieee802154Link,
    MAC_OVERHEAD_BYTES,
    MTU_BYTES,
    RadioModel,
)


class TestFraming:
    def test_payload_per_frame(self):
        link = Ieee802154Link()
        assert link.payload_per_frame_bytes == MTU_BYTES - MAC_OVERHEAD_BYTES

    def test_single_frame_for_small_payload(self):
        link = Ieee802154Link()
        assert link.frames_for(8 * 50) == 1

    def test_multiple_frames(self):
        link = Ieee802154Link()
        per_frame = link.payload_per_frame_bytes
        assert link.frames_for(8 * (per_frame + 1)) == 2
        assert link.frames_for(8 * (3 * per_frame)) == 3

    def test_zero_payload(self):
        link = Ieee802154Link()
        assert link.frames_for(0) == 0
        cost = link.transmit(0)
        assert cost.energy_j == 0.0 and cost.airtime_s == 0.0


class TestEnergy:
    def test_monotone_in_payload(self):
        link = Ieee802154Link()
        energies = [link.transmit(bits).energy_j
                    for bits in (100, 1000, 10_000, 100_000)]
        assert all(a < b for a, b in zip(energies, energies[1:]))

    def test_airtime_matches_bitrate(self):
        radio = RadioModel(bitrate_bps=250e3)
        link = Ieee802154Link(radio, ack_enabled=False)
        cost = link.transmit(8 * 100)
        expected_bits = 8 * (100 + 6 + 11)  # payload + PHY + MAC
        assert cost.airtime_s == pytest.approx(expected_bits / 250e3)

    def test_ack_adds_energy(self):
        with_ack = Ieee802154Link(ack_enabled=True).transmit(8000)
        without = Ieee802154Link(ack_enabled=False).transmit(8000)
        assert with_ack.energy_j > without.energy_j

    def test_startup_charged_per_wakeup(self):
        link = Ieee802154Link()
        one = link.transmit(800, wakeups=1).energy_j
        three = link.transmit(800, wakeups=3).energy_j
        assert three - one == pytest.approx(2 * link.radio.startup_energy_j)

    def test_effective_energy_per_bit_decreases_with_batching(self):
        link = Ieee802154Link()
        small = link.effective_energy_per_payload_bit(200)
        large = link.effective_energy_per_payload_bit(80_000)
        assert large < small

    def test_effective_energy_above_raw_bit_energy(self):
        link = Ieee802154Link()
        assert link.effective_energy_per_payload_bit(10_000) > \
            link.radio.energy_per_bit()

    def test_zero_payload_effective_energy(self):
        assert Ieee802154Link().effective_energy_per_payload_bit(0) == 0.0
