"""Node-level energy scenarios (Fig. 6 and the 44.7 % / 56.1 % claims).

Combines the radio, MCU and front-end models into the three transmission
strategies Fig. 6 compares:

* **No Comp.** — stream every raw sample;
* **Single-Lead CS** — compress one lead with the sparse-binary encoder at
  its 20 dB operating point, stream the measurements;
* **Multi-Lead CS** — compress all leads (per-lead matrices) at the joint
  decoder's 20 dB operating point.

Each scenario yields a per-window energy breakdown (radio / sampling /
compression / OS), from which the Fig. 6 bars and the average power
reductions follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..compression.encoder import CsEncoder, MultiLeadCsEncoder, raw_payload_bits
from .mcu import FrontEndModel, McuModel
from .radio import Ieee802154Link, RadioModel


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-window node energy, by component (joules).

    Attributes:
        radio: Radio energy (TX + ACK + startup).
        sampling: Front-end acquisition energy.
        compression: MCU energy spent encoding.
        os: RTOS overhead energy.
        window_s: Window duration the figures refer to.
    """

    radio: float
    sampling: float
    compression: float
    os: float
    window_s: float

    @property
    def total(self) -> float:
        """Total energy per window."""
        return self.radio + self.sampling + self.compression + self.os

    @property
    def average_power_w(self) -> float:
        """Average node power over the window."""
        return self.total / self.window_s

    def as_microjoules(self) -> dict[str, float]:
        """Breakdown in microjoules (the Fig. 6 axis)."""
        return {
            "radio": 1e6 * self.radio,
            "sampling": 1e6 * self.sampling,
            "compression": 1e6 * self.compression,
            "os": 1e6 * self.os,
        }


@dataclass
class NodeEnergyModel:
    """Energy model of the full WBSN node.

    Args:
        fs: Sampling rate (the node acquires at 250 Hz).
        sample_bits: ADC resolution / raw transmission word.
        n_leads: Leads acquired by the node (SmartCardia: 3).
        cycles_per_addition: MCU cycles per CS integer addition (load +
            add on a 16-bit core).
    """

    fs: float = 250.0
    sample_bits: int = 12
    n_leads: int = 3
    cycles_per_addition: float = 2.0
    radio: RadioModel = field(default_factory=RadioModel)
    mcu: McuModel = field(default_factory=McuModel)
    frontend: FrontEndModel = field(default_factory=FrontEndModel)

    def __post_init__(self) -> None:
        self.link = Ieee802154Link(self.radio)

    def _common(self, window_s: float, n_leads: int) -> tuple[float, float]:
        """(sampling, os) energy for one window."""
        n_samples = int(round(window_s * self.fs))
        sampling = self.frontend.sampling_energy(n_samples, n_leads, window_s)
        os_energy = self.mcu.rtos_energy(window_s)
        return sampling, os_energy

    def raw_streaming(self, window_s: float = 2.0,
                      n_leads: int | None = None) -> EnergyBreakdown:
        """No-compression baseline: every sample goes over the air."""
        n_leads = self.n_leads if n_leads is None else n_leads
        n_samples = int(round(window_s * self.fs))
        payload = n_leads * raw_payload_bits(n_samples, self.sample_bits)
        radio = self.link.transmit(payload).energy_j
        sampling, os_energy = self._common(window_s, n_leads)
        return EnergyBreakdown(radio=radio, sampling=sampling,
                               compression=0.0, os=os_energy,
                               window_s=window_s)

    def single_lead_cs(self, cr_percent: float,
                       window_s: float = 2.0) -> EnergyBreakdown:
        """Single-lead CS: one lead compressed and transmitted."""
        n = int(round(window_s * self.fs))
        encoder = CsEncoder(n=n, cr_percent=cr_percent,
                            quant_bits=self.sample_bits)
        payload = encoder.payload_bits_per_window()
        radio = self.link.transmit(payload).energy_j
        cycles = encoder.sensing.additions_per_window() \
            * self.cycles_per_addition
        compression = self.mcu.compute_energy(cycles)
        sampling, os_energy = self._common(window_s, n_leads=1)
        return EnergyBreakdown(radio=radio, sampling=sampling,
                               compression=compression, os=os_energy,
                               window_s=window_s)

    def multi_lead_cs(self, cr_percent: float,
                      window_s: float = 2.0) -> EnergyBreakdown:
        """Multi-lead CS: all leads compressed (per-lead matrices)."""
        n = int(round(window_s * self.fs))
        encoder = MultiLeadCsEncoder(n_leads=self.n_leads, n=n,
                                     cr_percent=cr_percent,
                                     quant_bits=self.sample_bits)
        payload = encoder.payload_bits_per_window()
        radio = self.link.transmit(payload).energy_j
        cycles = encoder.additions_per_window() * self.cycles_per_addition
        compression = self.mcu.compute_energy(cycles)
        sampling, os_energy = self._common(window_s, self.n_leads)
        return EnergyBreakdown(radio=radio, sampling=sampling,
                               compression=compression, os=os_energy,
                               window_s=window_s)

    def power_reduction_percent(self, scenario: EnergyBreakdown,
                                baseline: EnergyBreakdown) -> float:
        """Average power reduction of ``scenario`` versus ``baseline``."""
        return 100.0 * (1.0 - scenario.average_power_w
                        / baseline.average_power_w)


def figure6_breakdowns(sl_cr_percent: float, ml_cr_percent: float,
                       window_s: float = 2.0,
                       model: NodeEnergyModel | None = None,
                       ) -> dict[str, EnergyBreakdown]:
    """The three Fig. 6 bars at the given 20 dB operating points.

    Following the figure, the single-lead comparison streams one lead and
    the multi-lead comparison streams all leads; each CS mode is compared
    against the raw baseline with the same lead count.
    """
    model = model or NodeEnergyModel()
    return {
        "no_comp_1lead": model.raw_streaming(window_s, n_leads=1),
        "no_comp": model.raw_streaming(window_s),
        "single_lead_cs": model.single_lead_cs(sl_cr_percent, window_s),
        "multi_lead_cs": model.multi_lead_cs(ml_cr_percent, window_s),
    }
