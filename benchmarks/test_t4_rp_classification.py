"""T4 (§III-D/§IV-A) — random-projection heartbeat classification.

Paper claims reproduced: (a) the 4-segment linearized Gaussian
memberships achieve "close-to-optimal results while vastly simplifying
the computational requirements"; (b) the sparse {0,+-1} projection matrix
(2 bits/element) performs close to dense projections while removing all
multiplications; (c) the whole classifier fits a few kB and a few
thousand cycles per beat.
"""

from __future__ import annotations

from conftest import print_table
from repro.classification import (
    HeartbeatClassifier,
    corpus_beat_dataset,
    evaluate_classification,
    train_test_split,
)

CONFIGS = (
    ("ternary/exact", "ternary", "exact"),
    ("ternary/pwl", "ternary", "pwl"),
    ("dense-sign/exact", "dense_sign", "exact"),
    ("gaussian/exact", "gaussian", "exact"),
)


def run_design_points(corpus):
    X, y = corpus_beat_dataset(corpus, rr_features=True)
    Xtr, ytr, Xte, yte = train_test_split(X, y, test_fraction=0.4, seed=5)
    window = X.shape[1] - 2
    results = []
    for label, kind, membership in CONFIGS:
        clf = HeartbeatClassifier(window=window, projection_kind=kind,
                                  membership=membership,
                                  extra_features=2).fit(Xtr, ytr)
        report = evaluate_classification(yte, clf.predict(Xte))
        cost = clf.projector.cost()
        results.append((label, report, cost, clf.cycles_per_beat()))
    return results


def test_t4_rp_classification(benchmark, ectopy_corpus):
    results = benchmark.pedantic(run_design_points, args=(ectopy_corpus,),
                                 rounds=1, iterations=1)
    rows = []
    for label, report, cost, cycles in results:
        rows.append((label, report.accuracy, report.sensitivity("V"),
                     report.sensitivity("S"), cost.storage_bytes, cycles))
    print_table("T4: heartbeat classification design points "
                "(paper: linearization + sparse RP close to optimal)",
                ["config", "accuracy", "Se(V)", "Se(S)", "matrix [B]",
                 "cycles/beat"], rows)

    accuracy = {label: report.accuracy for label, report, _, _ in results}
    # (a) PWL within a few points of exact memberships.
    assert abs(accuracy["ternary/exact"] - accuracy["ternary/pwl"]) < 0.05
    # (b) sparse ternary close to the dense baselines.
    assert accuracy["ternary/exact"] > accuracy["gaussian/exact"] - 0.06
    # Overall quality: >= 90 % accuracy, strong PVC sensitivity.
    assert accuracy["ternary/exact"] >= 0.90
    v_sens = {label: report.sensitivity("V")
              for label, report, _, _ in results}
    assert v_sens["ternary/exact"] >= 0.85
    # (c) embedded budget: 2-bit matrix storage beats 16-bit by ~8x and
    # the PWL variant cuts the per-beat cycle count.
    costs = {label: cost for label, _, cost, _ in results}
    assert costs["ternary/exact"].storage_bytes * 7 < \
        costs["gaussian/exact"].storage_bytes
    cycles = {label: c for label, _, _, c in results}
    assert cycles["ternary/pwl"] < cycles["ternary/exact"]
