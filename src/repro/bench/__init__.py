"""Unified performance harness: one registry, one runner, one artifact.

Every figure/table benchmark under ``benchmarks/`` and every systems
benchmark (fleet throughput, scenario campaign) is registered here as a
:class:`BenchCase` and driven by one :class:`BenchRunner` with
warmup+repeat timing and fixed seeds.  The runner emits a single
schema-versioned ``BENCH_<rev>.json`` — per-case wall time, throughput
(samples/s, patients/s), peak RSS and pass/fail against the committed
baselines in ``benchmarks/baselines.json`` — plus a human-readable
table::

    PYTHONPATH=src python -m repro.bench --quick

The paper argues in budgets (pJ/cycle per operation, bits per heartbeat
on the air); this module gives the *software* reproduction the same
discipline: a machine-readable performance trajectory, regressed in CI.
"""

from .registry import BenchCase, BenchContext, all_cases, get_case, register
from .runner import (
    BenchReport,
    BenchRunner,
    load_baselines,
    resolve_revision,
    write_baselines,
)
from .schema import BENCH_SCHEMA, BenchSchemaError, validate_report

__all__ = [
    "BENCH_SCHEMA",
    "BenchCase",
    "BenchContext",
    "BenchReport",
    "BenchRunner",
    "BenchSchemaError",
    "all_cases",
    "get_case",
    "load_baselines",
    "register",
    "resolve_revision",
    "validate_report",
    "write_baselines",
]
