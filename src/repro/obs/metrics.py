"""Deterministic metrics: counters, gauges and histograms with labels.

The fleet's accounting layer.  A :class:`MetricsRegistry` holds labeled
series of three types — integer :class:`Counter` families, float
:class:`Gauge` families and bucketed :class:`Histogram` families — and
can render them two ways: a Prometheus-style text exposition
(:meth:`MetricsRegistry.to_prometheus`) for scrape-shaped consumers,
and a canonical JSON snapshot (:meth:`MetricsRegistry.snapshot` /
:func:`canonical_metrics_json`) whose bytes are the determinism
contract.

Two design rules make snapshots mergeable *exactly* (no float drift):

* counters only accept **integer** increments and histograms record
  **integer bucket counts** (no float sum field), so folding N shard
  snapshots is pure integer addition — associative, commutative, and
  byte-identical to the single-process run that observed the same
  events;
* every series carries a **scope**: :data:`SCOPE_FLEET` series are
  per-entity (patient, mode, ...) and additive across any shard layout,
  while :data:`SCOPE_SHARD` series (batch shapes, wall clocks, queue
  depths) describe one process and are excluded from the canonical
  (layout-independent) snapshot.

Gauges hold floats (a state of charge is not a count) but stay
merge-safe by convention: a fleet-scope gauge must be labeled by the
entity that owns it (e.g. ``patient``), so exactly one shard ever sets
each series.
"""

from __future__ import annotations

import bisect
import json
import math
from dataclasses import dataclass, field

#: Fleet-scope series are additive/per-entity across any shard layout
#: and form the canonical (layout-independent) snapshot.
SCOPE_FLEET = "fleet"
#: Shard-scope series describe one process (wall clocks, batch shapes);
#: they appear in full snapshots but never in the canonical one.
SCOPE_SHARD = "shard"

#: Serve-scope series describe the socket gateway service of
#: :mod:`repro.fleet.serve` (connections, stream frames, per-connection
#: queue depth).  Like shard scope they are deployment-shaped rather
#: than simulation-shaped, so they are excluded from the canonical
#: layout-independent snapshot.
SCOPE_SERVE = "serve"

_SCOPES = (SCOPE_FLEET, SCOPE_SHARD, SCOPE_SERVE)

#: Default histogram bucket upper bounds (generic positive magnitudes).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)


class MetricsError(ValueError):
    """Inconsistent metric usage: type/scope/bucket mismatch, bad value."""


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    """Canonical (sorted) hashable form of one label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """One labeled family of monotonically increasing integer counts."""

    name: str
    help: str
    scope: str
    series: dict[tuple[tuple[str, str], ...], int] = \
        field(default_factory=dict)

    def inc(self, amount: int = 1, **labels: str) -> None:
        """Add ``amount`` (a non-negative int) to one labeled series."""
        if not isinstance(amount, int) or isinstance(amount, bool) \
                or amount < 0:
            raise MetricsError(
                f"counter {self.name}: increments must be non-negative "
                f"integers (got {amount!r}) so shard merges stay exact")
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0) + amount

    def value(self, **labels: str) -> int:
        """Current count of one labeled series (0 if never touched)."""
        return self.series.get(_label_key(labels), 0)


@dataclass
class Gauge:
    """One labeled family of last-written float values."""

    name: str
    help: str
    scope: str
    series: dict[tuple[tuple[str, str], ...], float] = \
        field(default_factory=dict)

    def set(self, value: float, **labels: str) -> None:
        """Overwrite one labeled series with ``value`` (finite float)."""
        value = float(value)
        if not math.isfinite(value):
            raise MetricsError(
                f"gauge {self.name}: value must be finite, got {value}")
        self.series[_label_key(labels)] = value

    def value(self, **labels: str) -> float:
        """Current value of one labeled series (nan if never set)."""
        return self.series.get(_label_key(labels), float("nan"))


@dataclass
class Histogram:
    """One labeled family of bucketed integer observation counts.

    Buckets are cumulative-exclusive at storage time — each observation
    lands in exactly one bucket, the first whose upper bound is **>=**
    the value (Prometheus ``le`` semantics: a value exactly equal to a
    bound belongs to that bound's bucket; ``+Inf`` catches the rest) —
    and rendered cumulatively in the Prometheus exposition.  There is
    deliberately no float ``sum`` field — integer bucket counts merge
    exactly across shards.
    """

    name: str
    help: str
    scope: str
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    series: dict[tuple[tuple[str, str], ...], list[int]] = \
        field(default_factory=dict)

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into its bucket.

        Bucket upper bounds are inclusive: ``observe(5.0)`` against
        bounds ``(1, 5, 10)`` lands in the ``le=5`` bucket, matching
        the cumulative Prometheus rendering.

        Raises:
            MetricsError: NaN observation — NaN compares false against
                every bound, so it would otherwise fall through into
                ``+Inf`` and silently poison the tail count.  Guard
                the call site instead.
        """
        value = float(value)
        if math.isnan(value):
            raise MetricsError(
                f"histogram {self.name}: NaN is not bucketable; "
                f"guard the call site instead of observing it")
        key = _label_key(labels)
        counts = self.series.get(key)
        if counts is None:
            counts = [0] * (len(self.buckets) + 1)
            self.series[key] = counts
        # bisect_left finds the first bound >= value: the inclusive
        # ``le`` bucket; values above every bound index the +Inf slot.
        counts[bisect.bisect_left(self.buckets, value)] += 1

    def count(self, **labels: str) -> int:
        """Total observations of one labeled series."""
        return sum(self.series.get(_label_key(labels), ()))


class MetricsRegistry:
    """A named collection of metric families with exact-merge snapshots.

    Families are get-or-create: asking for an existing name returns the
    existing family after checking that type, scope and (for
    histograms) buckets match — so instrumentation sites can declare
    what they need without coordinating a central catalog.
    """

    def __init__(self) -> None:
        self._families: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, help: str, scope: str, **kwargs):
        """Get-or-create one family, validating consistency."""
        if scope not in _SCOPES:
            raise MetricsError(f"unknown scope {scope!r}; "
                               f"choose from {_SCOPES}")
        family = self._families.get(name)
        if family is None:
            family = cls(name=name, help=help, scope=scope, **kwargs)
            self._families[name] = family
            return family
        if not isinstance(family, cls) or family.scope != scope:
            raise MetricsError(
                f"metric {name!r} re-declared as {cls.__name__}/{scope} "
                f"but exists as {type(family).__name__}/{family.scope}")
        buckets = kwargs.get("buckets")
        if buckets is not None and tuple(buckets) != family.buckets:
            raise MetricsError(
                f"histogram {name!r} re-declared with different buckets")
        return family

    def counter(self, name: str, help: str = "",
                scope: str = SCOPE_FLEET) -> Counter:
        """Get-or-create one counter family."""
        return self._get(name, Counter, help, scope)

    def gauge(self, name: str, help: str = "",
              scope: str = SCOPE_FLEET) -> Gauge:
        """Get-or-create one gauge family."""
        return self._get(name, Gauge, help, scope)

    def histogram(self, name: str, help: str = "",
                  scope: str = SCOPE_FLEET,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  ) -> Histogram:
        """Get-or-create one histogram family."""
        return self._get(name, Histogram, help, scope,
                         buckets=tuple(buckets))

    def families(self) -> dict[str, Counter | Gauge | Histogram]:
        """Name -> family, for introspection and tests."""
        return dict(self._families)

    def snapshot(self, scope: str | None = None) -> dict:
        """Deterministic dict view of every series.

        Args:
            scope: Restrict to one scope (``None`` = everything).  Pass
                :data:`SCOPE_FLEET` for the canonical layout-independent
                snapshot the shard-equivalence contract compares.

        Returns:
            ``{"series": [...]}`` with entries sorted by
            ``(name, labels)`` — byte-stable under
            :func:`canonical_metrics_json`.
        """
        entries: list[dict] = []
        for name in sorted(self._families):
            family = self._families[name]
            if scope is not None and family.scope != scope:
                continue
            meta = {"name": name, "help": family.help,
                    "scope": family.scope}
            if isinstance(family, Counter):
                kind, render = "counter", lambda v: v
            elif isinstance(family, Gauge):
                kind, render = "gauge", float
            else:
                kind = "histogram"
                meta["buckets"] = list(family.buckets)

                def render(counts: list[int]) -> list[int]:
                    return list(counts)
            for key in sorted(family.series):
                entries.append({**meta, "type": kind,
                                "labels": dict(key),
                                "value": render(family.series[key])})
        return {"series": entries}

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every family (all scopes)."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            kind = {Counter: "counter", Gauge: "gauge",
                    Histogram: "histogram"}[type(family)]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {kind}")
            for key in sorted(family.series):
                value = family.series[key]
                if isinstance(family, Histogram):
                    cumulative = 0
                    bounds = [*family.buckets, float("inf")]
                    for bound, count in zip(bounds, value):
                        cumulative += count
                        bound_s = ("+Inf" if math.isinf(bound)
                                   else format(bound, "g"))
                        lines.append(
                            f"{name}_bucket"
                            f"{_prom_labels(key, le=bound_s)} "
                            f"{cumulative}")
                    lines.append(
                        f"{name}_count{_prom_labels(key)} {cumulative}")
                else:
                    rendered = (format(value, "g")
                                if isinstance(family, Gauge) else value)
                    lines.append(f"{name}{_prom_labels(key)} {rendered}")
        return "\n".join(lines) + "\n"


def _prom_labels(key: tuple[tuple[str, str], ...], **extra: str) -> str:
    """Render one label set in Prometheus ``{k="v",...}`` syntax."""
    items = [*key, *sorted(extra.items())]
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (str(value).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def canonical_metrics_json(snapshot: dict) -> str:
    """Byte-stable serialization of one metrics snapshot.

    The comparison surface of the N-shard == 1-shard equivalence tests
    and the ``fleet-obs-overhead`` bench gate.
    """
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def merge_metric_snapshots(snapshots: list[dict]) -> dict:
    """Fold N metric snapshots into one, exactly.

    Counters and histogram buckets add (pure integer addition, so the
    fold is associative and order-independent); gauges last-write-win
    in input order (fleet-scope gauges are per-entity labeled, so at
    most one input carries each series).  Entries with the same
    ``(name, labels)`` must agree on type/scope/buckets.

    Raises:
        MetricsError: Conflicting declarations for one series key.
    """
    merged: dict[tuple, dict] = {}
    for snapshot in snapshots:
        for entry in snapshot.get("series", ()):
            key = (entry["name"],
                   _label_key(entry.get("labels", {})))
            prior = merged.get(key)
            if prior is None:
                merged[key] = {**entry,
                               "labels": dict(entry.get("labels", {}))}
                continue
            for attr in ("type", "scope", "buckets"):
                if prior.get(attr) != entry.get(attr):
                    raise MetricsError(
                        f"snapshot merge conflict on {entry['name']!r}: "
                        f"{attr} {prior.get(attr)!r} != "
                        f"{entry.get(attr)!r}")
            if entry["type"] == "counter":
                prior["value"] += entry["value"]
            elif entry["type"] == "histogram":
                prior["value"] = [a + b for a, b in
                                  zip(prior["value"], entry["value"])]
            else:  # gauge: last write wins (per-entity by convention)
                prior["value"] = entry["value"]
    order = sorted(merged, key=lambda k: (k[0], k[1]))
    return {"series": [merged[key] for key in order]}
