"""T3 (in-text §V) — AF detection: 96 % sensitivity, 93 % specificity.

Paper: analysing "the regularity of the heart beat rate as well as the
shape of the P wave" with a fuzzy classifier achieves 96 % Se / 93 % Sp
"comparable ... to state-of-the-art off-line AF detection algorithms
while operating in real-time on an embedded device".  The bench trains on
one paroxysmal-AF corpus and scores a held-out one, end-to-end through the
on-node chain (R-peak detection -> wavelet delineation -> feature windows
-> fuzzy decision).
"""

from __future__ import annotations

from conftest import print_table
from repro.classification import AF_LABEL, AfDetector


def train_and_evaluate(train, test, membership="exact"):
    detector = AfDetector(membership=membership).fit(list(train))
    return detector.evaluate(list(test))


def test_t3_af_detection(benchmark, af_corpora):
    train, test = af_corpora
    report = benchmark.pedantic(train_and_evaluate, args=(train, test),
                                rounds=1, iterations=1)
    rows = [
        ("measured", report.sensitivity(AF_LABEL),
         report.specificity(AF_LABEL), report.accuracy, report.total),
        ("paper", 0.96, 0.93, "-", "-"),
    ]
    print_table("T3: AF detection on held-out paroxysmal-AF corpus",
                ["source", "sensitivity", "specificity", "accuracy",
                 "windows"], rows)
    # Paper band: 96 / 93; accept >= 90 / 88 on the synthetic corpus.
    assert report.sensitivity(AF_LABEL) >= 0.90
    assert report.specificity(AF_LABEL) >= 0.88


def test_t3_pwl_variant_matches(benchmark, af_corpora):
    """The embedded (4-segment PWL) classifier matches the exact one."""
    train, test = af_corpora
    report = benchmark.pedantic(train_and_evaluate,
                                args=(train, test, "pwl"),
                                rounds=1, iterations=1)
    print_table("T3: PWL-membership AF detector",
                ["sensitivity", "specificity"],
                [(report.sensitivity(AF_LABEL),
                  report.specificity(AF_LABEL))])
    assert report.sensitivity(AF_LABEL) >= 0.88
    assert report.specificity(AF_LABEL) >= 0.85
