"""Program inspection utilities for the WBSN simulator.

A disassembler and a static-analysis pass over kernel programs: the
DATE'14 mapping methodology reasons about instruction mix and memory
pressure before running anything, and the tests use these utilities to
pin the kernels' structural properties (e.g. "the 3L-MF inner loop is
branch-light and SIMD-safe").
"""

from __future__ import annotations

from dataclasses import dataclass

from .isa import BRANCH_OPS, Instruction, MEMORY_OPS, MUL_OPS, Op


def disassemble(program: list[Instruction]) -> str:
    """Human-readable listing of a program, one instruction per line."""
    lines = []
    targets = {instr.imm for instr in program if instr.op in BRANCH_OPS
               and instr.op != Op.BAR}
    for address, instr in enumerate(program):
        marker = "->" if address in targets else "  "
        lines.append(f"{marker}{address:5d}: {_format(instr)}")
    return "\n".join(lines)


def _format(instr: Instruction) -> str:
    op = instr.op
    if op == Op.LDI:
        return f"LDI   r{instr.rd}, {instr.imm}"
    if op == Op.MOV:
        return f"MOV   r{instr.rd}, r{instr.rs1}"
    if op in (Op.ADD, Op.SUB, Op.MUL, Op.MIN, Op.MAX):
        return (f"{op.name:<5} r{instr.rd}, r{instr.rs1}, r{instr.rs2}")
    if op == Op.ADDI:
        return f"ADDI  r{instr.rd}, r{instr.rs1}, {instr.imm}"
    if op == Op.ABS:
        return f"ABS   r{instr.rd}, r{instr.rs1}"
    if op in (Op.SHL, Op.SHR):
        return f"{op.name:<5} r{instr.rd}, r{instr.rs1}, {instr.imm}"
    if op == Op.LD:
        return f"LD    r{instr.rd}, [r{instr.rs1}+{instr.imm}]"
    if op == Op.ST:
        return f"ST    [r{instr.rs1}+{instr.imm}], r{instr.rs2}"
    if op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
        return (f"{op.name:<5} r{instr.rs1}, r{instr.rs2}, @{instr.imm}")
    if op == Op.JMP:
        return f"JMP   @{instr.imm}"
    if op == Op.CID:
        return f"CID   r{instr.rd}"
    return op.name


@dataclass(frozen=True)
class ProgramStats:
    """Static properties of a program.

    Attributes:
        size: Instruction count (footprint in I-mem words).
        alu: Arithmetic/logic instructions.
        mul: Multiplications.
        memory: Loads + stores.
        branches: Control-flow instructions.
        barriers: Barrier instructions.
        data_dependent_branches: Conditional branches whose condition can
            differ across cores running the same code on different data —
            the SIMD-divergence candidates §IV-B's barriers repair.  Loop
            back-edges on counter registers are still counted (a static
            pass cannot prove them uniform), so this is an upper bound.
    """

    size: int
    alu: int
    mul: int
    memory: int
    branches: int
    barriers: int
    data_dependent_branches: int

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions touching data memory."""
        return self.memory / self.size if self.size else 0.0


def analyze(program: list[Instruction]) -> ProgramStats:
    """Compute :class:`ProgramStats` for a program."""
    alu = mul = memory = branches = barriers = data_dep = 0
    for instr in program:
        op = instr.op
        if op in MEMORY_OPS:
            memory += 1
        elif op in MUL_OPS:
            mul += 1
        elif op in BRANCH_OPS:
            branches += 1
            if op != Op.JMP:
                data_dep += 1
        elif op == Op.BAR:
            barriers += 1
        else:
            alu += 1
    return ProgramStats(size=len(program), alu=alu, mul=mul, memory=memory,
                        branches=branches, barriers=barriers,
                        data_dependent_branches=data_dep)
