"""Accuracy tests for the MMD delineator and the MMD transform."""

import numpy as np
import pytest

from repro.delineation import (
    MmdDelineator,
    MmdDelineatorConfig,
    RPeakDetector,
    evaluate_delineation,
    mmd_transform,
)


class TestMmdTransform:
    def test_zero_on_constant_signal(self):
        assert np.allclose(mmd_transform(np.full(200, 3.0), 5), 0.0)

    def test_negative_minimum_at_peak(self):
        t = np.arange(200)
        x = np.exp(-0.5 * ((t - 100) / 6.0) ** 2)
        m = mmd_transform(x, 8)
        assert np.argmin(m) == pytest.approx(100, abs=2)
        assert m[100] < 0

    def test_positive_maximum_at_pit(self):
        t = np.arange(200)
        x = -np.exp(-0.5 * ((t - 100) / 6.0) ** 2)
        m = mmd_transform(x, 8)
        assert np.argmax(m) == pytest.approx(100, abs=2)
        assert m[100] > 0

    def test_flanking_positive_lobes(self):
        t = np.arange(300)
        x = np.exp(-0.5 * ((t - 150) / 10.0) ** 2)
        m = mmd_transform(x, 10)
        assert np.max(m[110:140]) > 0
        assert np.max(m[160:190]) > 0

    def test_invalid_half_width(self):
        with pytest.raises(ValueError, match="half-width"):
            mmd_transform(np.zeros(10), 0)

    def test_baseline_invariance(self, rng):
        x = rng.standard_normal(300)
        shifted = x + 100.0
        assert np.allclose(mmd_transform(x, 6), mmd_transform(shifted, 6))


@pytest.fixture(scope="module")
def mmd_nsr_report(nsr_record):
    ecg = nsr_record.lead(1)
    peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
    detected = MmdDelineator(ecg.fs).delineate(ecg.signal, peaks)
    return evaluate_delineation(ecg.beats, detected, ecg.fs)


class TestAccuracy:
    def test_beat_level(self, mmd_nsr_report):
        assert mmd_nsr_report.beat_sensitivity >= 0.99

    def test_qrs_fiducials_above_90(self, mmd_nsr_report):
        for mark in ("onset", "peak", "end"):
            score = mmd_nsr_report.fiducials[("QRS", mark)]
            assert score.sensitivity >= 0.90, mark
            assert score.ppv >= 0.90, mark

    def test_t_fiducials_above_90(self, mmd_nsr_report):
        for mark in ("onset", "peak", "end"):
            score = mmd_nsr_report.fiducials[("T", mark)]
            assert score.sensitivity >= 0.90, mark

    def test_p_fiducials_above_85(self, mmd_nsr_report):
        # The MMD P detection is slightly weaker than the wavelet variant
        # under noise (documented in EXPERIMENTS.md).
        for mark in ("onset", "peak", "end"):
            score = mmd_nsr_report.fiducials[("P", mark)]
            assert score.sensitivity >= 0.85, mark
            assert score.ppv >= 0.90, mark


class TestInterfaces:
    def test_empty_signal(self):
        assert MmdDelineator(250.0).delineate(np.zeros(100)) == []

    def test_invalid_fs(self):
        with pytest.raises(ValueError, match="positive"):
            MmdDelineator(0.0)

    def test_delineate_record(self, nsr_record):
        ecg = nsr_record.lead(1)
        detected = MmdDelineator(ecg.fs).delineate_record(
            ecg, use_annotated_r_peaks=True)
        assert len(detected) == len(ecg.beats)

    def test_config_presence_factors(self, af_record):
        ecg = af_record.lead(1)
        strict = MmdDelineator(ecg.fs, MmdDelineatorConfig(
            p_presence_factor=50.0))
        detected = strict.delineate(ecg.signal, ecg.r_peaks)
        assert all(not d.p_wave.present for d in detected)
