"""Mapping the bio-signal applications onto the multi-core WBSN (§IV-B).

Simulates the paper's Fig. 3 platform running the three Fig. 7 kernels
(3L-MF filtering, 3L-MMD delineation, RP-CLASS classification) on the
single-core and synchronized multi-core configurations, and prints the
power decomposition with and without the broadcast interconnect.

Run:  python examples/multicore_mapping.py
"""

from __future__ import annotations

from repro.hwsim import compare_all, run_mf3l
from repro.signals import RecordSpec, make_record


def main() -> None:
    record = make_record(RecordSpec(name="hw", duration_s=6.0,
                                    snr_db=25.0, seed=9))
    block = record.signals[:, 500:750]          # one second, 3 leads
    beat = record.lead(1).beat_window(record.beats[3])

    print("simulating SC and MC mappings (functionally verified "
          "against NumPy references) ...\n")
    comparisons = compare_all(block, beat, record.fs)

    header = (f"{'config':<12} {'f [kHz]':>8} {'V':>6} {'core':>7} "
              f"{'imem':>7} {'dmem':>7} {'leak':>7} {'total':>8}")
    print(header)
    print("-" * len(header))
    for cmp in comparisons:
        for report in (cmp.sc, cmp.mc):
            uw = report.as_microwatts()
            print(f"{report.label:<12} {report.frequency_hz / 1e3:>8.1f} "
                  f"{report.voltage_v:>6.3f} {uw['core']:>7.3f} "
                  f"{uw['imem']:>7.3f} {uw['dmem']:>7.3f} "
                  f"{uw['leakage']:>7.3f} {uw['total']:>8.3f}")
        print(f"{'-> MC saves':<12} {cmp.savings_percent:>7.1f} % "
              f"(paper: up to 40 %)\n")

    # What the broadcast interconnect is worth (§IV-B).
    without = run_mf3l(block, record.fs, broadcast=False)
    with_bc = run_mf3l(block, record.fs, broadcast=True)
    print("broadcast-interconnect ablation (3L-MF):")
    print(f"  with broadcast:    savings {with_bc.savings_percent:5.1f} %, "
          f"{with_bc.mc_run.counters.imem_accesses} I-mem accesses")
    print(f"  without broadcast: savings {without.savings_percent:5.1f} %, "
          f"{without.mc_run.counters.imem_accesses} I-mem accesses, "
          f"{without.mc_run.counters.imem_conflict_stalls} stall cycles")

    # Load balance: §IV-B notes fine-tuned balance is not a precondition.
    mmd = comparisons[1]
    counts = mmd.mc_run.per_core_instructions
    spread = 100.0 * (max(counts) - min(counts)) / max(counts)
    print(f"\n3L-MMD per-core instruction spread: {spread:.1f} % "
          f"(cores {counts})")


if __name__ == "__main__":
    main()
