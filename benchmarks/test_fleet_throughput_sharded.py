"""Sharded fleet throughput — zero-copy fabric vs the legacy baseline.

Not a paper figure: this benchmarks the `repro.fleet.sharding` layer
plus the PR-10 zero-copy transport refactor.  Two legs run over the
same cohort:

* **baseline** — the PR-9-equivalent configuration: single process,
  pickle transport, pure-numpy FISTA (forced via ``REPRO_NO_NUMBA=1``
  in a subprocess so the compiled kernels cannot leak in);
* **sharded** — 4 process shards on the shared-memory transport with
  whatever FISTA backend is live (numba when installed).

The merged `FleetSummary` must be **byte-identical** between the two
legs — which simultaneously proves the sharding determinism contract,
the shm fabric, *and* the numba/numpy bit-exactness claim of
`repro.compression.fista_kernels`.  On a machine with >= 4 cores the
sharded leg must clear 10x over the baseline when the compiled drain is
live, 2x on the numpy fallback.  On smaller runners the speedup
assertion is skipped — byte-equivalence always gates.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest
from conftest import print_table

from repro.compression.fista_kernels import backend
from repro.fleet import (
    CohortConfig,
    GatewayConfig,
    NodeProxyConfig,
    SchedulerConfig,
    ShardedFleetRunner,
    make_cohort,
)
from repro.fleet.transport import SharedMemoryTransport

N_PATIENTS = 12
DURATION_S = 120.0
FS = 250.0
N_SHARDS = 4
#: Required sharded-over-baseline speedup on a >= 4-core machine with
#: the compiled FISTA drain live.
MIN_SPEEDUP_COMPILED = 10.0
#: Fallback floor when numba is absent: parallelism alone must carry.
MIN_SPEEDUP_FALLBACK = 2.0

_BASELINE_SNIPPET = """
import json, sys
from repro.fleet import (CohortConfig, GatewayConfig, NodeProxyConfig,
                         SchedulerConfig, ShardedFleetRunner, make_cohort)
cohort = make_cohort(CohortConfig(n_patients={n_patients}, seed=7))
report = ShardedFleetRunner(
    cohort, n_shards=1, transport="pickle",
    config=SchedulerConfig(duration_s={duration}, fs={fs}),
    node_config=NodeProxyConfig(stream_telemetry=False),
    gateway_config=GatewayConfig(n_iter=80)).run()
json.dump({{"wall_s": report.timings_s["total"],
            "summary": report.summary.to_json(),
            "packets": report.packets_sent}}, sys.stdout)
"""


def run_baseline() -> dict:
    """The PR-9-equivalent leg in a numpy-only subprocess."""
    env = dict(os.environ, REPRO_NO_NUMBA="1")
    env.setdefault("PYTHONPATH", "src")
    code = _BASELINE_SNIPPET.format(n_patients=N_PATIENTS,
                                    duration=DURATION_S, fs=FS)
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True, check=True)
    return json.loads(out.stdout)


def run_sharded():
    """The zero-copy leg: N shards over shared memory (when present)."""
    cohort = make_cohort(CohortConfig(n_patients=N_PATIENTS, seed=7))
    transport = ("shared_memory" if SharedMemoryTransport.available()
                 else "pickle")
    return ShardedFleetRunner(
        cohort, n_shards=N_SHARDS, transport=transport,
        config=SchedulerConfig(duration_s=DURATION_S, fs=FS),
        node_config=NodeProxyConfig(stream_telemetry=False),
        gateway_config=GatewayConfig(n_iter=80)).run(), transport


def test_fleet_throughput_sharded(benchmark):
    baseline, (sharded, transport) = benchmark.pedantic(
        lambda: (run_baseline(), run_sharded()), rounds=1, iterations=1)
    speedup = baseline["wall_s"] / sharded.timings_s["total"]

    print_table(
        f"Sharded fleet ({N_PATIENTS} patients x {DURATION_S:.0f} s, "
        f"{N_SHARDS} shards)",
        ["metric", "value"],
        [
            ("baseline wall [s] (1 proc, numpy, pickle)",
             baseline["wall_s"]),
            (f"{N_SHARDS}-shard wall [s] ({transport}, {backend()})",
             sharded.timings_s["total"]),
            ("speedup [x]", speedup),
            ("patients/sec (sharded)", sharded.patients_per_second),
            ("packets sent", sharded.packets_sent),
            ("SNR p50 [dB]", sharded.summary.snr_p50_db),
            ("cores available", os.cpu_count() or 1),
        ],
    )

    # The determinism contract gates unconditionally — and because the
    # baseline leg ran on the numpy fallback in another process, this
    # also proves the compiled drain and the shm fabric change nothing.
    assert sharded.summary.to_json() == baseline["summary"], \
        "zero-copy sharded FleetSummary diverged from the baseline leg"
    assert sharded.packets_sent == baseline["packets"]
    assert sharded.summary.n_patients == N_PATIENTS
    assert sharded.summary.dropped_packets == 0

    if (os.cpu_count() or 1) < N_SHARDS:
        pytest.skip(f"speedup assertion needs >= {N_SHARDS} cores "
                    f"(have {os.cpu_count() or 1}); byte-equivalence "
                    "already checked")
    floor = (MIN_SPEEDUP_COMPILED if backend() == "numba"
             else MIN_SPEEDUP_FALLBACK)
    assert speedup >= floor, (
        f"{N_SHARDS}-shard zero-copy run only {speedup:.2f}x faster "
        f"than the single-process baseline (need >= {floor}x with the "
        f"{backend()} drain)")
