"""Multi-lead projection of beat morphologies.

The SmartCardia node in the paper acquires 3-lead ECG (Fig. 4).  Instead of
simulating the full cardiac dipole, each lead is given a per-wave gain
vector: the waves of the underlying beat template are scaled per lead, which
(a) keeps wave *timing* identical across leads — the physical reality that
the multi-lead CS recovery of [6] exploits through shared sparsity support —
while (b) giving each lead a distinct morphology, as real Einthoven leads
have.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .beats import BeatTemplate

#: Default 3-lead gain matrix, rows = leads (I, II, III), columns = waves
#: (P, Q, R, S, T).  Values approximate the relative projections of the
#: mean electrical axis on the Einthoven triangle for a normal axis (~60°).
DEFAULT_LEAD_GAINS = np.array(
    [
        [0.55, 0.50, 0.60, 0.45, 0.60],   # lead I
        [1.00, 1.00, 1.00, 1.00, 1.00],   # lead II (reference morphology)
        [0.50, 0.55, 0.45, 0.65, 0.45],   # lead III
    ]
)

DEFAULT_LEAD_NAMES = ("I", "II", "III")


@dataclass(frozen=True)
class LeadSet:
    """A set of ECG leads defined by per-wave gains.

    Attributes:
        gains: Array of shape ``(n_leads, 5)``; column order P, Q, R, S, T.
        names: Lead names, one per row of ``gains``.
    """

    gains: np.ndarray
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        gains = np.atleast_2d(np.asarray(self.gains, dtype=float))
        object.__setattr__(self, "gains", gains)
        if gains.shape[1] != 5:
            raise ValueError("gains must have 5 columns (P, Q, R, S, T)")
        if len(self.names) != gains.shape[0]:
            raise ValueError("one name required per lead")

    @property
    def n_leads(self) -> int:
        """Number of leads in the set."""
        return self.gains.shape[0]

    def project(self, template: BeatTemplate, lead: int) -> BeatTemplate:
        """Scale a beat template's waves by one lead's gain vector."""
        row = self.gains[lead]
        waves = template.waves()
        scaled = [
            replace(wave, amplitude=wave.amplitude * gain)
            for wave, gain in zip(waves, row)
        ]
        return BeatTemplate(template.label, *scaled)


def standard_3lead() -> LeadSet:
    """The default 3-lead configuration used throughout the benchmarks."""
    return LeadSet(DEFAULT_LEAD_GAINS.copy(), DEFAULT_LEAD_NAMES)


def single_lead() -> LeadSet:
    """A single-lead configuration (lead II morphology)."""
    return LeadSet(DEFAULT_LEAD_GAINS[1:2].copy(), ("II",))
