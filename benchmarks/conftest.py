"""Shared fixtures and table printing for the reproduction benchmarks.

Every module regenerates one figure/table of the paper (see DESIGN.md §3).
Benchmarks both *time* the experiment (pytest-benchmark) and *print* the
rows/series the paper reports, asserting the shape criteria from
DESIGN.md.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.signals import make_corpus


def print_table(title: str, headers: list[str],
                rows: list[tuple]) -> None:
    """Print one result table in a fixed-width layout."""
    print(f"\n=== {title} ===")
    widths = [max(len(h), 12) for h in headers]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        cells = []
        for value, w in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:.3f}".ljust(w))
            else:
                cells.append(str(value).ljust(w))
        print("  ".join(cells))


@pytest.fixture(scope="session")
def cs_corpus():
    """Corpus for the Fig. 5 CS evaluation (PhysioNet-like noise)."""
    return make_corpus("cs_eval", n_records=4, duration_s=30.0, seed=2014)


@pytest.fixture(scope="session")
def nsr_corpus():
    """Corpus for delineation accuracy (T1)."""
    return make_corpus("nsr", n_records=6, duration_s=60.0, seed=77)


@pytest.fixture(scope="session")
def ectopy_corpus():
    """Corpus with ectopic beats for classification (T4)."""
    return make_corpus("ectopy", n_records=6, duration_s=60.0, seed=42)


@pytest.fixture(scope="session")
def af_corpora():
    """(train, test) paroxysmal-AF corpora for T3."""
    train = make_corpus("af_mix", n_records=4, duration_s=120.0, seed=1)
    test = make_corpus("af_mix", n_records=4, duration_s=120.0, seed=2)
    return train, test


@pytest.fixture(scope="session")
def hw_block(nsr_corpus):
    """One-second 3-lead block + beat window for the Fig. 7 kernels."""
    record = nsr_corpus.records[0]
    block = record.signals[:, 500:750]
    beat = record.lead(1).beat_window(record.beats[3])
    return record.fs, block, beat
