"""Unit tests for repro.signals.rhythms (RR-interval generators)."""

import numpy as np
import pytest

from repro.signals import (
    BEAT_APC,
    BEAT_NORMAL,
    BEAT_PVC,
    RHYTHM_AF,
    RHYTHM_SINUS,
    RhythmSegment,
    RhythmSequence,
    af_rhythm,
    paroxysmal_af,
    sinus_rhythm,
    with_ectopy,
)


class TestSinusRhythm:
    def test_mean_rate(self, rng):
        segment = sinus_rhythm(300.0, mean_hr_bpm=60.0, rng=rng)
        assert np.mean(segment.rr_s) == pytest.approx(1.0, rel=0.05)

    def test_duration_respected(self, rng):
        segment = sinus_rhythm(60.0, rng=rng)
        assert segment.duration_s <= 60.0
        assert segment.duration_s > 50.0

    def test_all_normal_labels(self, rng):
        segment = sinus_rhythm(30.0, rng=rng)
        assert set(segment.labels) == {BEAT_NORMAL}
        assert segment.rhythm == RHYTHM_SINUS

    def test_variability_close_to_requested(self, rng):
        segment = sinus_rhythm(600.0, mean_hr_bpm=60.0, hrv_std_s=0.05,
                               rng=rng)
        assert np.std(segment.rr_s) == pytest.approx(0.05, rel=0.3)

    def test_intervals_physiological(self, rng):
        segment = sinus_rhythm(120.0, mean_hr_bpm=90.0, rng=rng)
        assert np.all(segment.rr_s > 0.3)
        assert np.all(segment.rr_s < 2.6)


class TestAfRhythm:
    def test_more_irregular_than_sinus(self, rng):
        af = af_rhythm(300.0, rng=rng)
        nsr = sinus_rhythm(300.0, rng=rng)
        cv_af = np.std(af.rr_s) / np.mean(af.rr_s)
        cv_nsr = np.std(nsr.rr_s) / np.mean(nsr.rr_s)
        assert cv_af > 2.0 * cv_nsr

    def test_labels_and_rhythm(self, rng):
        af = af_rhythm(30.0, rng=rng)
        assert af.rhythm == RHYTHM_AF
        assert all(label == "A" for label in af.labels)

    def test_successive_differences_uncorrelated(self, rng):
        af = af_rhythm(600.0, rng=rng)
        rr = af.rr_s - np.mean(af.rr_s)
        autocorr = np.corrcoef(rr[:-1], rr[1:])[0, 1]
        assert abs(autocorr) < 0.25


class TestWithEctopy:
    def test_requested_fractions(self, rng):
        base = sinus_rhythm(600.0, rng=rng)
        mixed = with_ectopy(base, pvc_fraction=0.10, apc_fraction=0.05,
                            rng=rng)
        labels = np.array(mixed.labels)
        n = labels.shape[0]
        assert np.sum(labels == BEAT_PVC) == pytest.approx(0.10 * n, abs=3)
        assert np.sum(labels == BEAT_APC) == pytest.approx(0.05 * n, abs=3)

    def test_pvc_prematurity_and_pause(self, rng):
        base = sinus_rhythm(300.0, mean_hr_bpm=60.0, hrv_std_s=0.001,
                            rng=rng)
        mixed = with_ectopy(base, pvc_fraction=0.05, prematurity=0.3,
                            rng=rng)
        labels = list(mixed.labels)
        for i, label in enumerate(labels):
            if label == BEAT_PVC and 0 < i < len(labels) - 1:
                # Premature beat, then compensatory pause; the two-beat
                # span is preserved.
                assert mixed.rr_s[i] < base.rr_s[i]
                assert mixed.rr_s[i + 1] > base.rr_s[i + 1]
                total = mixed.rr_s[i] + mixed.rr_s[i + 1]
                assert total == pytest.approx(
                    base.rr_s[i] + base.rr_s[i + 1], rel=1e-6)

    def test_rejects_excessive_fraction(self, rng):
        base = sinus_rhythm(30.0, rng=rng)
        with pytest.raises(ValueError, match="not physiological"):
            with_ectopy(base, pvc_fraction=0.4, apc_fraction=0.2, rng=rng)

    def test_total_duration_preserved_for_apc_free_tail(self, rng):
        base = sinus_rhythm(120.0, rng=rng)
        mixed = with_ectopy(base, pvc_fraction=0.08, rng=rng)
        assert mixed.duration_s == pytest.approx(base.duration_s, rel=0.02)


class TestParoxysmalAf:
    def test_burden_respected(self, rng):
        sequence = paroxysmal_af(1200.0, af_burden=0.4, rng=rng)
        af_time = sum(s.duration_s for s in sequence.segments
                      if s.rhythm == RHYTHM_AF)
        assert af_time / sequence.duration_s == pytest.approx(0.4, abs=0.15)

    def test_pure_extremes(self, rng):
        nsr_only = paroxysmal_af(120.0, af_burden=0.0, rng=rng)
        assert all(s.rhythm == RHYTHM_SINUS for s in nsr_only.segments)
        af_only = paroxysmal_af(120.0, af_burden=1.0, rng=rng)
        assert all(s.rhythm == RHYTHM_AF for s in af_only.segments)

    def test_alternation(self, rng):
        sequence = paroxysmal_af(600.0, af_burden=0.5, episode_s=60.0,
                                 rng=rng)
        rhythms = [s.rhythm for s in sequence.segments]
        assert all(a != b for a, b in zip(rhythms, rhythms[1:]))

    def test_invalid_burden(self, rng):
        with pytest.raises(ValueError, match="af_burden"):
            paroxysmal_af(60.0, af_burden=1.5, rng=rng)


class TestRhythmSequence:
    def test_flatten_concatenates(self, rng):
        a = sinus_rhythm(20.0, rng=rng)
        b = af_rhythm(20.0, rng=rng)
        sequence = RhythmSequence().append(a).append(b)
        rr, labels, rhythms = sequence.flatten()
        assert rr.shape[0] == a.n_beats + b.n_beats
        assert labels[:a.n_beats] == a.labels
        assert set(rhythms) == {RHYTHM_SINUS, RHYTHM_AF}

    def test_empty_flatten(self):
        rr, labels, rhythms = RhythmSequence().flatten()
        assert rr.size == 0
        assert labels == ()
        assert rhythms == ()

    def test_segment_validates_lengths(self):
        with pytest.raises(ValueError, match="same length"):
            RhythmSegment(RHYTHM_SINUS, np.array([0.8, 0.8]), ("N",))
