"""Unit tests for the WBSN platform simulator (ISA semantics, SIMD fetch,
barriers, broadcast merging)."""

import pytest

from repro.hwsim import Assembler, Instruction, Op, Platform, SHARED_BASE


def _run_single(asm, private=None, shared=None):
    platform = Platform(n_cores=1)
    return platform.run(asm.assemble(),
                        [private] if private is not None else None, shared)


class TestIsaSemantics:
    def test_arithmetic_ops(self):
        asm = Assembler()
        asm.ldi(1, 7)
        asm.ldi(2, 3)
        asm.add(3, 1, 2)      # 10
        asm.sub(4, 1, 2)      # 4
        asm.mul(5, 1, 2)      # 21
        asm.minr(6, 1, 2)     # 3
        asm.maxr(7, 1, 2)     # 7
        asm.addi(8, 1, -10)   # -3
        asm.abs_(9, 8)        # 3
        asm.shl(10, 2, 2)     # 12
        asm.shr(11, 1, 1)     # 3
        for reg, value in ((3, 10), (4, 4), (5, 21), (6, 3), (7, 7),
                           (8, -3), (9, 3), (10, 12), (11, 3)):
            asm.st(0, reg, 100 + reg)
        asm.halt()
        result = _run_single(asm)
        memory = result.private_memories[0]
        for reg, value in ((3, 10), (4, 4), (5, 21), (6, 3), (7, 7),
                           (8, -3), (9, 3), (10, 12), (11, 3)):
            assert memory[100 + reg] == value, Op(0)

    def test_load_store_private(self):
        asm = Assembler()
        asm.ldi(1, 42)
        asm.st(0, 1, 10)
        asm.ld(2, 0, 10)
        asm.st(0, 2, 11)
        asm.halt()
        result = _run_single(asm)
        assert result.private_memories[0][11] == 42

    def test_shared_memory_access(self):
        asm = Assembler()
        asm.ldi(1, SHARED_BASE)
        asm.ldi(2, 99)
        asm.st(1, 2, 5)
        asm.halt()
        result = _run_single(asm)
        assert result.shared_memory[5] == 99
        assert result.counters.dmem_shared_accesses == 1

    def test_branches(self):
        asm = Assembler()
        asm.ldi(1, 0)
        asm.ldi(2, 10)
        asm.label("loop")
        asm.addi(1, 1, 1)
        asm.blt(1, 2, "loop")
        asm.st(0, 1, 50)
        asm.halt()
        result = _run_single(asm)
        assert result.private_memories[0][50] == 10

    def test_cid_on_each_core(self):
        asm = Assembler()
        asm.cid(1)
        asm.ldi(2, SHARED_BASE)
        asm.add(2, 2, 1)
        asm.st(2, 1, 0)
        asm.halt()
        result = Platform(n_cores=3).run(asm.assemble())
        assert result.shared_memory[:3].tolist() == [0, 1, 2]

    def test_mov_and_jmp(self):
        asm = Assembler()
        asm.ldi(1, 5)
        asm.mov(2, 1)
        asm.jmp("end")
        asm.ldi(2, 99)  # skipped
        asm.label("end")
        asm.st(0, 2, 7)
        asm.halt()
        result = _run_single(asm)
        assert result.private_memories[0][7] == 5

    def test_falling_off_program_halts(self):
        asm = Assembler()
        asm.ldi(1, 1)  # no HALT
        result = _run_single(asm)
        assert result.counters.total_instructions >= 1


class TestBarriers:
    def test_barrier_synchronizes_divergent_cores(self):
        # Core 1 loops longer before the barrier; both must meet.
        asm = Assembler()
        asm.cid(1)
        asm.ldi(2, 0)
        asm.ldi(3, 5)
        asm.label("work")
        asm.addi(2, 2, 1)
        asm.add(4, 3, 1)   # limit = 5 + cid
        asm.blt(2, 4, "work")
        asm.bar()
        asm.ldi(5, SHARED_BASE)
        asm.add(5, 5, 1)
        asm.st(5, 2, 0)
        asm.halt()
        result = Platform(n_cores=2).run(asm.assemble())
        assert result.shared_memory[0] == 5
        assert result.shared_memory[1] == 6
        assert result.counters.barrier_wait_cycles > 0

    def test_single_core_barrier_is_noop(self):
        asm = Assembler()
        asm.bar()
        asm.ldi(1, 3)
        asm.st(0, 1, 0)
        asm.halt()
        result = _run_single(asm)
        assert result.private_memories[0][0] == 3
        assert result.counters.barrier_wait_cycles == 0


class TestBroadcast:
    def _simd_program(self, iterations=50):
        asm = Assembler()
        asm.ldi(1, 0)
        asm.ldi(2, iterations)
        asm.label("loop")
        asm.addi(1, 1, 1)
        asm.blt(1, 2, "loop")
        asm.halt()
        return asm.assemble()

    def test_aligned_cores_merge_fetches(self):
        program = self._simd_program()
        mc = Platform(n_cores=3, broadcast=True).run(program)
        sc = Platform(n_cores=1).run(program)
        # Perfect SIMD: MC fetch count equals the SC count.
        assert mc.counters.imem_accesses == sc.counters.imem_accesses
        assert mc.counters.imem_broadcast_merges == \
            2 * sc.counters.imem_accesses

    def test_no_broadcast_serializes(self):
        program = self._simd_program()
        merged = Platform(n_cores=3, broadcast=True).run(program)
        serial = Platform(n_cores=3, broadcast=False).run(program)
        assert serial.counters.imem_accesses == pytest.approx(
            3 * merged.counters.imem_accesses, rel=0.01)
        assert serial.counters.imem_conflict_stalls > 0
        # Once serialization staggers the cores, different PCs often land
        # in different banks, so the slowdown is < 3x but clearly > 1.8x.
        assert serial.counters.cycles > 1.8 * merged.counters.cycles

    def test_per_core_instruction_balance(self):
        program = self._simd_program()
        result = Platform(n_cores=3).run(program)
        counts = result.per_core_instructions
        assert max(counts) - min(counts) <= 1


class TestGuards:
    def test_livelock_guard(self):
        asm = Assembler()
        asm.label("forever")
        asm.jmp("forever")
        platform = Platform(n_cores=1, max_cycles=1000)
        with pytest.raises(RuntimeError, match="cycles"):
            platform.run(asm.assemble())

    def test_validation(self):
        with pytest.raises(ValueError):
            Platform(n_cores=0)
        with pytest.raises(ValueError):
            Platform(imem_banks=0)

    def test_register_bounds_checked(self):
        with pytest.raises(ValueError, match="register file"):
            Instruction(Op.ADD, rd=16)


class TestAssembler:
    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(ValueError, match="twice"):
            asm.label("x")

    def test_undefined_label_rejected(self):
        asm = Assembler()
        asm.jmp("nowhere")
        with pytest.raises(KeyError, match="undefined label"):
            asm.assemble()

    def test_label_on_non_branch_rejected(self):
        asm = Assembler()
        with pytest.raises(ValueError, match="cannot take a label"):
            asm.emit(Op.ADD, rd=1, target="x")

    def test_forward_and_backward_targets(self):
        asm = Assembler()
        asm.ldi(1, 0)
        asm.label("back")
        asm.addi(1, 1, 1)
        asm.ldi(2, 3)
        asm.blt(1, 2, "back")
        asm.jmp("end")
        asm.label("end")
        asm.halt()
        program = asm.assemble()
        assert program[3].imm == 1  # back
        assert program[4].imm == 5  # end
