"""repro.obs — deterministic observability for the fleet stack.

Zero-dependency metrics, virtual-time tracing, and a gateway flight
recorder.  Everything here is opt-in and out-of-band: the signal path,
`FleetSummary.to_json()` bytes and golden records are unchanged when no
:class:`Observability` handle is passed, and byte-identical even when
one is.

Determinism contract (mirrors the `FleetSummary` shard-equivalence
guarantee): with the same master seed, the canonical fleet-scope
metric and trace snapshots of an N-shard run are byte-identical to a
1-shard run and to a plain in-process `FleetScheduler` run.

See ``docs/observability.md`` for the metric catalog, trace event
schema and flight-recorder dump format.
"""

from repro.obs.context import (Observability, ObsConfig,
                               canonical_bundle_json, canonical_view,
                               merge_bundles)
from repro.obs.flight import (ANOMALY_ALARM_BURST,
                              ANOMALY_JOURNAL_TRUNCATED,
                              ANOMALY_NAN_GUARD,
                              ANOMALY_REASSEMBLY_STALL,
                              ANOMALY_WIRE_ERROR, AnomalyRecord,
                              FlightRecorder, load_flight_dump)
from repro.obs.metrics import (Counter, DEFAULT_BUCKETS, Gauge,
                               Histogram, MetricsError, MetricsRegistry,
                               SCOPE_FLEET, SCOPE_SERVE, SCOPE_SHARD,
                               canonical_metrics_json,
                               merge_metric_snapshots)
from repro.obs.trace import (KIND_INSTANT, KIND_SPAN, TraceError,
                             TraceEvent, TraceRecorder,
                             canonical_trace_json,
                             merge_trace_snapshots)

__all__ = [
    "ANOMALY_ALARM_BURST",
    "ANOMALY_JOURNAL_TRUNCATED",
    "ANOMALY_NAN_GUARD",
    "ANOMALY_REASSEMBLY_STALL",
    "ANOMALY_WIRE_ERROR",
    "AnomalyRecord",
    "Counter",
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KIND_INSTANT",
    "KIND_SPAN",
    "MetricsError",
    "MetricsRegistry",
    "Observability",
    "ObsConfig",
    "SCOPE_FLEET",
    "SCOPE_SERVE",
    "SCOPE_SHARD",
    "TraceError",
    "TraceEvent",
    "TraceRecorder",
    "canonical_bundle_json",
    "canonical_metrics_json",
    "canonical_view",
    "canonical_trace_json",
    "load_flight_dump",
    "merge_bundles",
    "merge_metric_snapshots",
    "merge_trace_snapshots",
]
