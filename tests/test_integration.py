"""Cross-module integration tests: the paper's processing chains."""

import numpy as np

from repro.compression import (
    CsDecoder,
    CsEncoder,
    JointCsDecoder,
    MultiLeadCsEncoder,
    reconstruction_snr_db,
)
from repro.delineation import (
    RPeakDetector,
    WaveletDelineator,
    evaluate_delineation,
)
from repro.filtering import MorphologicalFilter, combine_leads
from repro.signals import RecordSpec, make_record


class TestConditioningHelpsDelineation:
    def test_conditioned_beats_raw_on_wandering_signal(self):
        record = make_record(RecordSpec(name="amb", duration_s=30.0,
                                        snr_db=10.0, ambulatory=True,
                                        seed=31))
        ecg = record.lead(1)
        conditioner = MorphologicalFilter(ecg.fs)
        conditioned = conditioner.condition_record(ecg)

        def worst_sensitivity(signal):
            peaks = RPeakDetector(ecg.fs).detect(signal)
            detected = WaveletDelineator(ecg.fs).delineate(signal, peaks)
            report = evaluate_delineation(ecg.beats, detected, ecg.fs)
            return report.beat_sensitivity

        assert worst_sensitivity(conditioned.signal) >= \
            worst_sensitivity(ecg.signal) - 0.02


class TestRmsCombinationHelpsDetection:
    def test_combined_detection_at_low_snr(self):
        record = make_record(RecordSpec(name="low", duration_s=30.0,
                                        snr_db=8.0, seed=13))
        combined = combine_leads(record)
        peaks = RPeakDetector(record.fs).detect(combined.signal)
        tol = int(0.05 * record.fs)
        truth = record.r_peaks
        matched = sum(1 for t in truth
                      if np.any(np.abs(peaks - t) <= tol))
        assert matched / truth.shape[0] > 0.9


class TestCsPreservesDiagnosticContent:
    def test_delineation_survives_cs_roundtrip(self, clean_record):
        ecg = clean_record.lead(1)
        n = 512
        encoder = CsEncoder(n=n, cr_percent=50.0, seed=3)
        decoder = CsDecoder(encoder.sensing)
        n_windows = len(ecg) // n
        reconstructed = np.zeros(n_windows * n)
        for w in range(n_windows):
            window = ecg.signal[w * n:(w + 1) * n]
            reconstructed[w * n:(w + 1) * n] = decoder.recover(
                encoder.encode(window)).window
        truth_beats = [b for b in ecg.beats
                       if b.r_peak < n_windows * n - 200]
        peaks = RPeakDetector(ecg.fs).detect(reconstructed)
        detected = WaveletDelineator(ecg.fs).delineate(reconstructed, peaks)
        report = evaluate_delineation(truth_beats, detected, ecg.fs)
        assert report.beat_sensitivity > 0.95
        assert report.fiducials[("QRS", "peak")].sensitivity > 0.9


class TestFig5MiniSweep:
    def test_shape_on_two_points(self, clean_record):
        seg = clean_record.signals[:, 1000:1512]
        results = {}
        for cr in (55.0, 75.0):
            sl_enc = CsEncoder(n=512, cr_percent=cr, seed=3)
            sl = reconstruction_snr_db(
                seg[1],
                CsDecoder(sl_enc.sensing).recover(
                    sl_enc.encode(seg[1])).window)
            ml_enc = MultiLeadCsEncoder(n_leads=3, n=512, cr_percent=cr,
                                        seed=100)
            recovery = JointCsDecoder(ml_enc.sensing_matrices).recover(
                ml_enc.encode(seg))
            ml = np.mean([reconstruction_snr_db(seg[lead], recovery.windows[lead])
                          for lead in range(3)])
            results[cr] = (sl, ml)
        # SNR falls with CR for both curves; ML dominates SL at high CR.
        assert results[55.0][0] > results[75.0][0]
        assert results[55.0][1] > results[75.0][1]
        assert results[75.0][1] > results[75.0][0]
