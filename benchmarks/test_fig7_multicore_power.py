"""Fig. 7 — SC vs MC average power decomposition for the three apps.

Paper: mapping 3L-MF (filtering), 3L-MMD (delineation) and RP-CLASS
(classification) onto the synchronized multi-core platform reduces global
power by up to 40 % versus the single-core variant, with the instruction
memory benefiting from broadcast fetch merging.  The bench simulates all
three kernels on both platforms (functionally verified against NumPy
references inside ``run_*``), derives the V/f operating points from the
real-time deadlines, and prints the per-component power bars.
"""

from __future__ import annotations

from conftest import print_table
from repro.hwsim import compare_all, run_mf3l


def run_comparisons(fs, block, beat):
    return compare_all(block, beat, fs)


def test_fig7_sc_vs_mc(benchmark, hw_block):
    fs, block, beat = hw_block
    comparisons = benchmark.pedantic(run_comparisons,
                                     args=(fs, block, beat),
                                     rounds=1, iterations=1)
    rows = []
    for cmp in comparisons:
        for report in (cmp.sc, cmp.mc):
            uw = report.as_microwatts()
            rows.append((report.label, report.frequency_hz / 1e3,
                         report.voltage_v, uw["core"], uw["imem"],
                         uw["dmem"], uw["leakage"], uw["total"]))
        rows.append((f"{cmp.name} savings %", cmp.savings_percent,
                     "-", "-", "-", "-", "-", "-"))
    print_table("Fig. 7: average power decomposition [uW] "
                "(paper: MC saves up to 40 %)",
                ["config", "f [kHz]", "V", "core", "imem", "dmem",
                 "leak", "total"], rows)

    by_name = {cmp.name: cmp for cmp in comparisons}
    # Every app benefits from the MC mapping.
    for cmp in comparisons:
        assert cmp.savings_percent > 10.0, cmp.name
    # The heaviest data-parallel apps approach the paper's 40 %.
    assert max(cmp.savings_percent for cmp in comparisons) >= 33.0
    # Broadcast merging collapses I-mem power in MC.
    for name in ("3L-MF", "3L-MMD"):
        cmp = by_name[name]
        assert cmp.mc.imem_w < 0.5 * cmp.sc.imem_w
    # MC runs at a lower V/f operating point.
    for cmp in comparisons:
        assert cmp.mc.voltage_v < cmp.sc.voltage_v


def test_fig7_broadcast_ablation(benchmark, hw_block):
    fs, block, _ = hw_block

    def run_ablation():
        return (run_mf3l(block, fs, broadcast=True),
                run_mf3l(block, fs, broadcast=False))

    with_bc, without_bc = benchmark.pedantic(run_ablation, rounds=1,
                                             iterations=1)
    rows = [
        ("broadcast on", with_bc.savings_percent,
         with_bc.mc_run.counters.imem_accesses,
         with_bc.mc_run.counters.imem_conflict_stalls),
        ("broadcast off", without_bc.savings_percent,
         without_bc.mc_run.counters.imem_accesses,
         without_bc.mc_run.counters.imem_conflict_stalls),
    ]
    print_table("Fig. 7 ablation: broadcast interconnect (3L-MF, MC)",
                ["config", "MC savings %", "imem accesses", "stalls"],
                rows)
    assert with_bc.savings_percent > without_bc.savings_percent + 10.0
    assert without_bc.mc_run.counters.imem_conflict_stalls > 0


def test_cs_accelerator_extension(benchmark, hw_block):
    """Ref [19] (§IV-B): ISA-extension accelerator for CS encoding."""
    fs, block, _ = hw_block
    window = block[1]  # one lead, 250 samples

    def run():
        from repro.hwsim import run_cs_accelerator

        return run_cs_accelerator(window, fs)

    cmp = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("baseline RISC", cmp.sc_run.counters.total_instructions,
         1e9 * (cmp.sc.core_w + cmp.sc.imem_w + cmp.sc.dmem_w)),
        ("CSA extension", cmp.mc_run.counters.total_instructions,
         1e9 * (cmp.mc.core_w + cmp.mc.imem_w + cmp.mc.dmem_w)),
        ("dyn power ratio", cmp.processing_power_ratio, "-"),
    ]
    print_table("CS encoder accelerator (paper: ref [19] reports >10x "
                "with full memory-path specialization)",
                ["variant", "instructions", "dyn power [nW]"], rows)
    assert cmp.processing_power_ratio > 2.5
    assert cmp.sc_run.counters.total_instructions > \
        4 * cmp.mc_run.counters.total_instructions
