"""Tests for the unified performance harness (`repro.bench`)."""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BenchCase,
    BenchContext,
    BenchRunner,
    BenchSchemaError,
    all_cases,
    get_case,
    load_baselines,
    validate_report,
    write_baselines,
)

BENCHMARKS_DIR = Path(__file__).parent.parent / "benchmarks"


def _fast_case(name: str, result: dict | None = None,
               delay_s: float = 0.0) -> BenchCase:
    """A synthetic case for runner tests (no real workload)."""

    def workload(ctx: BenchContext) -> dict:
        if delay_s:
            time.sleep(delay_s)
        return dict(result or {"metric": 1.0})

    return BenchCase(name=name, summary="synthetic", legacy="test_none",
                     workload=workload)


class TestRegistryDiscovery:
    def test_every_legacy_benchmark_wrapped(self):
        legacy_modules = {path.stem
                          for path in BENCHMARKS_DIR.glob("test_*.py")}
        wrapped = {case.legacy for case in all_cases().values()}
        assert legacy_modules, "benchmarks/ must hold legacy modules"
        assert wrapped == legacy_modules, (
            "registry out of sync with benchmarks/: "
            f"unwrapped={sorted(legacy_modules - wrapped)} "
            f"orphaned={sorted(wrapped - legacy_modules)}")

    def test_one_case_per_legacy_module(self):
        legacy = [case.legacy for case in all_cases().values()]
        assert len(legacy) == len(set(legacy))

    def test_get_case_by_name(self):
        case = get_case("fleet-throughput")
        assert case.legacy == "test_fleet_throughput"

    def test_get_unknown_case_lists_known(self):
        with pytest.raises(KeyError, match="fleet-throughput"):
            get_case("nope")

    def test_workloads_accept_context(self):
        ctx = BenchContext(quick=True)
        result = get_case("fig1-abstraction-ladder").workload(ctx)
        assert result["raw_to_alarm_power_ratio"] > 10.0


class TestRunner:
    def test_report_validates_against_schema(self):
        runner = BenchRunner(cases=[_fast_case("a", {"samples": 1000})],
                             warmup=0, repeats=2)
        report = runner.run()
        payload = report.to_dict()
        validate_report(payload)  # raises on violation
        assert payload["schema_version"] == BENCH_SCHEMA[
            "properties"]["schema_version"]["enum"][0]
        (case,) = payload["cases"]
        assert case["repeats"] == 2
        assert case["status"] == "no-baseline"
        assert case["throughput"]["samples_per_s"] > 0
        assert case["peak_rss_mb"] > 0

    def test_counts_become_throughput_and_metrics(self):
        runner = BenchRunner(cases=[_fast_case(
            "a", {"samples": 500, "patients": 5, "snr_db": 12.0})],
            warmup=0, repeats=1)
        (case,) = runner.run().cases
        assert case["throughput"]["patients_per_s"] > 0
        assert case["metrics"]["snr_db"] == 12.0
        assert case["metrics"]["samples"] == 500

    def test_regression_detection_fires_on_synthetic_slowdown(self):
        baselines = {"slow": {"wall_s": 0.05}}
        runner = BenchRunner(cases=[_fast_case("slow", delay_s=0.09)],
                             warmup=0, repeats=1, baselines=baselines,
                             tolerance=0.25)
        report = runner.run()
        assert report.regressions == ["slow"]
        assert report.cases[0]["status"] == "regression"
        assert report.cases[0]["ratio"] > 1.25

    def test_sub_floor_baselines_report_but_never_gate(self):
        # A 1 ms workload cannot be wall-clock-gated: scheduler noise
        # dwarfs it.  The ratio is still reported for the table.
        baselines = {"tiny": {"wall_s": 0.001}}
        runner = BenchRunner(cases=[_fast_case("tiny", delay_s=0.01)],
                             warmup=0, repeats=1, baselines=baselines,
                             tolerance=0.25)
        report = runner.run()
        assert report.regressions == []
        assert report.cases[0]["status"] == "pass"
        assert report.cases[0]["ratio"] > 1.25

    def test_within_tolerance_passes(self):
        baselines = {"ok": {"wall_s": 10.0}}
        runner = BenchRunner(cases=[_fast_case("ok")], warmup=0,
                             repeats=1, baselines=baselines)
        report = runner.run()
        assert report.regressions == []
        assert report.cases[0]["status"] == "pass"

    def test_quick_mode_reads_quick_baseline_key(self):
        baselines = {"q": {"wall_s": 0.0001, "wall_s_quick": 10.0}}
        runner = BenchRunner(cases=[_fast_case("q")], warmup=0,
                             repeats=1, baselines=baselines, quick=True)
        assert runner.run().cases[0]["status"] == "pass"

    def test_describe_mentions_every_case(self):
        runner = BenchRunner(cases=[_fast_case("abc")], warmup=0,
                             repeats=1)
        text = runner.run().describe()
        assert "abc" in text and "no-baseline" in text

    def test_invalid_repeat_counts_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            BenchRunner(cases=[], repeats=0)


class TestBaselinesFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baselines.json"
        runner = BenchRunner(cases=[_fast_case("a")], warmup=0, repeats=1)
        write_baselines(path, runner.run(), note="seed")
        cases = load_baselines(path)
        assert "wall_s" in cases["a"]
        # quick walls land under their own key, full walls survive
        quick = BenchRunner(cases=[_fast_case("a")], warmup=0, repeats=1,
                            quick=True)
        write_baselines(path, quick.run())
        cases = load_baselines(path)
        assert set(cases["a"]) == {"wall_s", "wall_s_quick"}

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baselines(tmp_path / "nope.json") == {}

    def test_committed_baselines_cover_all_cases(self):
        cases = load_baselines(BENCHMARKS_DIR / "baselines.json")
        assert set(cases) == set(all_cases())
        for name, entry in cases.items():
            assert entry["wall_s"] > 0, name
            assert entry["wall_s_quick"] > 0, name

    def test_committed_bench_artifacts_validate(self):
        artifacts = sorted(BENCHMARKS_DIR.glob("BENCH_*.json"))
        assert artifacts, "the first BENCH artifact must be committed"
        for artifact in artifacts:
            validate_report(json.loads(artifact.read_text()))

    def test_kernel_artifact_records_event_efficiency(self):
        # The acceptance bar of the event-kernel issue: byte-identical
        # tick/kernel summaries plus >= 3x fewer kernel events than
        # tick-loop iterations on the 90 %-sparse cohort, recorded in
        # the committed artifact (pinned by name, like the PR-3 one).
        payload = json.loads(
            (BENCHMARKS_DIR / "BENCH_pr7-event-kernel.json").read_text())
        case = next(c for c in payload["cases"]
                    if c["name"] == "fleet-event-kernel")
        assert case["metrics"]["byte_identical"] is True
        assert case["metrics"]["event_ratio"] >= 3.0

    def test_serve_artifact_records_byte_identity(self):
        # The acceptance bar of the serving issue: the cohort pushed
        # through real loopback TCP sockets lands on the same
        # `FleetSummary.to_json()` bytes as the in-process engine,
        # recorded in the committed artifact (pinned by name).
        payload = json.loads(
            (BENCHMARKS_DIR / "BENCH_pr8-fleet-serve.json").read_text())
        case = next(c for c in payload["cases"]
                    if c["name"] == "fleet-serve-throughput")
        assert case["metrics"]["byte_identical"] is True
        assert case["metrics"]["served_packets_per_second"] > 0

    def test_seed_artifact_records_vectorization_speedup(self):
        # The acceptance bar of the bench issue: >= 2x on both systems
        # cases, recorded in the first committed artifact (pinned by
        # name — later artifacts need not carry this history block).
        payload = json.loads(
            (BENCHMARKS_DIR / "BENCH_pr3-bench-init.json").read_text())
        speedup = payload["history"]["speedup_vs_pre_vectorization"]
        assert speedup["fleet-throughput"] >= 2.0
        assert speedup["scenario-campaign"] >= 2.0


class TestFleetLifetimeCase:
    """The governed-lifetime case: schema-valid and claim-checked."""

    def test_fleet_lifetime_report_validates_against_schema(self):
        runner = BenchRunner(cases=[get_case("fleet-lifetime")],
                             quick=True, warmup=0, repeats=1)
        payload = runner.run().to_dict()
        validate_report(payload)  # raises on violation
        (case,) = payload["cases"]
        assert case["name"] == "fleet-lifetime"
        assert case["legacy"] == "test_fleet_lifetime"
        assert case["throughput"]["patients_per_s"] > 0

    def test_governor_beats_best_admissible_static(self):
        result = get_case("fleet-lifetime").workload(
            BenchContext(quick=True))
        # Acceptance bar: closed-loop lifetime >= the best static mode
        # that honors the acuity floor, on the mixed-acuity cohort.
        assert result["governor_hours"] >= result["best_static_hours"]
        assert result["lifetime_gain"] > 1.0
        assert result["best_static"] in ("multi_lead_cs", "raw")
        assert result["mean_switches"] > 0


class TestSchemaValidator:
    def _minimal(self) -> dict:
        runner = BenchRunner(cases=[_fast_case("a")], warmup=0, repeats=1)
        return runner.run().to_dict()

    def test_missing_required_key(self):
        payload = self._minimal()
        del payload["revision"]
        with pytest.raises(BenchSchemaError, match="revision"):
            validate_report(payload)

    def test_wrong_type(self):
        payload = self._minimal()
        payload["cases"][0]["wall_s"] = "fast"
        with pytest.raises(BenchSchemaError, match="wall_s"):
            validate_report(payload)

    def test_bad_enum(self):
        payload = self._minimal()
        payload["cases"][0]["status"] = "great"
        with pytest.raises(BenchSchemaError, match="status"):
            validate_report(payload)

    def test_bool_does_not_satisfy_number(self):
        payload = self._minimal()
        payload["cases"][0]["wall_s"] = True
        with pytest.raises(BenchSchemaError, match="wall_s"):
            validate_report(payload)

    def test_nullable_throughput(self):
        payload = self._minimal()
        payload["cases"][0]["throughput"] = None
        validate_report(payload)
