"""Node-side compressed-sensing encoder (paper §III-A, refs [4][16]).

The encoder is the only CS component that runs on the node, so its cost is
what Fig. 6's "Comp." slice measures.  With a sparse-binary sensing matrix
the product ``y = Phi @ x`` costs exactly ``nnz(Phi) = d * n`` integer
additions per window — no multiplications — and the measurements are then
quantized to the transmission word size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .matrices import sparse_binary_matrix
from .metrics import compression_ratio, measurements_for_cr


@dataclass(frozen=True)
class EncodedWindow:
    """One compressed window as it would be handed to the radio.

    Attributes:
        measurements: The (quantized) measurement vector ``y``.
        scale: Quantization scale to invert at the receiver.
        payload_bits: Bits handed to the radio for this window.
        additions: Integer additions spent encoding the window.
    """

    measurements: np.ndarray
    scale: float
    payload_bits: int
    additions: int


class CsEncoder:
    """Compressed-sensing encoder for fixed-length ECG windows.

    Args:
        n: Window length in samples (the paper's implementations use
            2-second windows: 512 samples at 256 Hz class rates).
        cr_percent: Target compression ratio.
        d: Ones per column of the sparse-binary matrix.
        quant_bits: Transmission word size (the node's ADC resolution).
        seed: Seed for the (node/receiver shared) matrix construction.
    """

    def __init__(self, n: int = 256, cr_percent: float = 50.0, d: int = 12,
                 quant_bits: int = 12, seed: int = 7) -> None:
        if quant_bits < 2:
            raise ValueError("need at least 2 quantization bits")
        self.n = n
        self.quant_bits = quant_bits
        m = measurements_for_cr(n, cr_percent)
        d = min(d, m)
        self.sensing = sparse_binary_matrix(
            m, n, d, rng=np.random.default_rng(seed))

    @property
    def m(self) -> int:
        """Measurements per window."""
        return self.sensing.m

    @property
    def cr_percent(self) -> float:
        """Actual compression ratio achieved."""
        return compression_ratio(self.n, self.m)

    def encode(self, window: np.ndarray) -> EncodedWindow:
        """Compress one window.

        Args:
            window: Array of ``n`` samples.

        Raises:
            ValueError: On window-length mismatch.
        """
        window = np.asarray(window, dtype=float)
        if window.shape != (self.n,):
            raise ValueError(f"expected window of {self.n} samples, "
                             f"got {window.shape}")
        y = self.sensing.matrix @ window
        quantized, scale = self._quantize(y)
        return EncodedWindow(
            measurements=quantized,
            scale=scale,
            payload_bits=self.payload_bits_per_window(),
            additions=self.sensing.additions_per_window(),
        )

    def encode_multilead(self, windows: np.ndarray) -> list[EncodedWindow]:
        """Compress one window per lead with the *same* matrix.

        Note: for joint multi-lead recovery, :class:`MultiLeadCsEncoder`
        (one matrix per lead) is the right tool — identical matrices on
        proportional leads add no information for the joint decoder.
        """
        windows = np.atleast_2d(np.asarray(windows, dtype=float))
        return [self.encode(windows[i]) for i in range(windows.shape[0])]

    def payload_bits_per_window(self) -> int:
        """Radio payload per window: m words plus one 16-bit scale."""
        return self.m * self.quant_bits + 16

    def additions_per_sample(self) -> float:
        """Average integer additions per input sample (cost model hook)."""
        return self.sensing.additions_per_window() / self.n

    def _quantize(self, y: np.ndarray) -> tuple[np.ndarray, float]:
        """Uniform mid-rise quantization to ``quant_bits`` bits."""
        peak = float(np.max(np.abs(y)))
        if peak == 0.0:
            return np.zeros_like(y), 1.0
        levels = 2 ** (self.quant_bits - 1) - 1
        scale = peak / levels
        quantized = np.rint(y / scale) * scale
        return quantized, scale


def raw_payload_bits(n_samples: int, sample_bits: int = 12) -> int:
    """Radio payload of uncompressed streaming (the Fig. 6 baseline)."""
    return n_samples * sample_bits


class MultiLeadCsEncoder:
    """Joint multi-lead CS encoder: one sparse-binary matrix *per lead*.

    Each lead gets its own matrix (derived seeds, shared with the
    receiver).  The node-side cost is identical to running the single-lead
    encoder on every lead, but the measurements become complementary
    projections of the (shared-support) lead set, which is what the joint
    decoder of ref [6] needs to outperform per-lead recovery (Fig. 5).

    Args:
        n_leads: Number of leads.
        n: Window length per lead.
        cr_percent: Per-lead compression ratio.
        d: Ones per matrix column.
        quant_bits: Transmission word size.
        seed: Base seed; lead ``l`` uses ``seed + l``.
    """

    def __init__(self, n_leads: int = 3, n: int = 256,
                 cr_percent: float = 50.0, d: int = 12, quant_bits: int = 12,
                 seed: int = 7) -> None:
        if n_leads < 1:
            raise ValueError("need at least one lead")
        self.encoders = [
            CsEncoder(n=n, cr_percent=cr_percent, d=d, quant_bits=quant_bits,
                      seed=seed + lead)
            for lead in range(n_leads)
        ]
        self.n = n

    @property
    def n_leads(self) -> int:
        """Number of leads."""
        return len(self.encoders)

    @property
    def m(self) -> int:
        """Measurements per lead per window."""
        return self.encoders[0].m

    @property
    def cr_percent(self) -> float:
        """Per-lead compression ratio achieved."""
        return self.encoders[0].cr_percent

    @property
    def sensing_matrices(self) -> list:
        """Per-lead sensing matrices (receiver side needs these)."""
        return [enc.sensing for enc in self.encoders]

    def encode(self, windows: np.ndarray) -> list[EncodedWindow]:
        """Compress one multi-lead window (shape ``(n_leads, n)``)."""
        windows = np.atleast_2d(np.asarray(windows, dtype=float))
        if windows.shape[0] != self.n_leads:
            raise ValueError(f"expected {self.n_leads} leads, "
                             f"got {windows.shape[0]}")
        return [enc.encode(windows[i])
                for i, enc in enumerate(self.encoders)]

    def payload_bits_per_window(self) -> int:
        """Total radio payload per multi-lead window."""
        return sum(enc.payload_bits_per_window() for enc in self.encoders)

    def additions_per_window(self) -> int:
        """Total integer additions per multi-lead window."""
        return sum(enc.sensing.additions_per_window()
                   for enc in self.encoders)
