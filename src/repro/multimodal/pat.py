"""Pulse arrival time, pulse wave velocity and blood-pressure estimation.

Section IV-C: "the pulse arrival time (PAT), calculated using ECG and a
simple and inexpensive photoplethysmograph (PPG) finger probe, can be used
to estimate the pulse wave velocity (PWV), which is a surrogate marker for
arterial stiffness and BP" (ref [20], Gesche et al.).

The chain implemented here:

1. Detect PPG pulse feet (maximum of the second derivative on the rising
   edge — the "intersecting tangents" class of foot detectors).
2. Pair each ECG R peak with the next pulse foot -> per-beat PAT.
3. PWV = arterial path length / PAT.
4. BP via the calibrated inverse-PAT regression ``SBP = a / PAT + b``
   (per-subject calibration, as in ref [20]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from ..signals.types import PpgRecord

#: Physiological PAT search window after each R peak, seconds.
PAT_MIN_S = 0.08
PAT_MAX_S = 0.45


def detect_pulse_feet(ppg: np.ndarray, fs: float,
                      min_period_s: float = 0.35) -> np.ndarray:
    """Detect pulse feet in a PPG waveform.

    For each systolic peak, the foot is placed at the maximum of the
    second derivative (strongest upward acceleration) on the rising edge.

    Args:
        ppg: PPG waveform.
        fs: Sampling frequency.
        min_period_s: Minimum pulse period (limits peak rate).

    Returns:
        Sorted array of foot sample indices.
    """
    ppg = np.asarray(ppg, dtype=float)
    if ppg.shape[0] < int(fs):
        return np.empty(0, dtype=int)
    # Light smoothing keeps the second derivative usable under noise.
    sos = sp_signal.butter(2, min(10.0, 0.45 * fs), btype="lowpass", fs=fs,
                           output="sos")
    smooth = sp_signal.sosfiltfilt(sos, ppg)
    distance = max(1, int(min_period_s * fs))
    prominence = 0.3 * float(np.std(smooth))
    peaks, _ = sp_signal.find_peaks(smooth, distance=distance,
                                    prominence=prominence)
    second = np.gradient(np.gradient(smooth))
    feet = []
    search = int(0.30 * fs)
    for peak in peaks:
        lo = max(0, peak - search)
        if peak - lo < 3:
            continue
        feet.append(lo + int(np.argmax(second[lo:peak])))
    return np.array(sorted(set(feet)), dtype=int)


@dataclass(frozen=True)
class PatSeries:
    """Per-beat pulse-arrival-time measurements.

    Attributes:
        r_peaks: R peaks that found a matching pulse foot.
        feet: The matched feet.
        pat_s: PAT per matched beat, seconds.
    """

    r_peaks: np.ndarray
    feet: np.ndarray
    pat_s: np.ndarray

    @property
    def mean_pat_s(self) -> float:
        """Mean PAT (nan when empty)."""
        return float(np.mean(self.pat_s)) if self.pat_s.size else float("nan")


def pulse_arrival_times(r_peaks: np.ndarray, feet: np.ndarray,
                        fs: float) -> PatSeries:
    """Pair R peaks with the next pulse foot inside the PAT window."""
    r_peaks = np.asarray(r_peaks, dtype=int)
    feet = np.asarray(feet, dtype=int)
    matched_r, matched_f, pats = [], [], []
    for r in r_peaks:
        after = feet[(feet > r + int(PAT_MIN_S * fs))
                     & (feet < r + int(PAT_MAX_S * fs))]
        if after.size == 0:
            continue
        foot = int(after[0])
        matched_r.append(int(r))
        matched_f.append(foot)
        pats.append((foot - r) / fs)
    return PatSeries(r_peaks=np.array(matched_r, dtype=int),
                     feet=np.array(matched_f, dtype=int),
                     pat_s=np.array(pats))


def measure_pat(ppg: PpgRecord, r_peaks: np.ndarray) -> PatSeries:
    """Full PAT measurement from a PPG record and ECG R peaks."""
    feet = detect_pulse_feet(ppg.signal, ppg.fs)
    return pulse_arrival_times(r_peaks, feet, ppg.fs)


def pwv_from_pat(pat_s: np.ndarray, path_length_m: float = 0.65) -> np.ndarray:
    """Pulse wave velocity from PAT over the heart-to-finger path."""
    pat_s = np.asarray(pat_s, dtype=float)
    if np.any(pat_s <= 0):
        raise ValueError("PAT values must be positive")
    return path_length_m / pat_s


@dataclass
class BpEstimator:
    """Calibrated inverse-PAT blood-pressure model: ``SBP = a / PAT + b``.

    Following ref [20], the two coefficients are fit per subject against a
    cuff reference during calibration, after which BP tracks PAT
    continuously.
    """

    coef_a: float = 0.0
    coef_b: float = 0.0
    fitted: bool = False

    def fit(self, pat_s: np.ndarray, sbp_mmhg: np.ndarray) -> "BpEstimator":
        """Least-squares calibration against reference BP readings.

        Raises:
            ValueError: With fewer than two calibration points.
        """
        pat_s = np.asarray(pat_s, dtype=float)
        sbp = np.asarray(sbp_mmhg, dtype=float)
        if pat_s.shape[0] < 2:
            raise ValueError("need at least two calibration points")
        design = np.column_stack([1.0 / pat_s, np.ones_like(pat_s)])
        (self.coef_a, self.coef_b), *_ = np.linalg.lstsq(design, sbp,
                                                         rcond=None)
        self.fitted = True
        return self

    def predict(self, pat_s: np.ndarray) -> np.ndarray:
        """Estimate SBP from PAT.

        Raises:
            RuntimeError: If called before :meth:`fit`.
        """
        if not self.fitted:
            raise RuntimeError("estimator requires calibration (call fit)")
        pat_s = np.asarray(pat_s, dtype=float)
        return self.coef_a / pat_s + self.coef_b
