"""MCU and front-end energy models (paper §IV-A, §V).

The paper's node couples an ultra-low-power 16-bit MCU (few MHz, integer
only, running FreeRTOS) with an analog acquisition front-end.  Both models
below charge energy per event (cycle / sample) plus standing power, with
MSP430-class datasheet constants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class McuModel:
    """16-bit ULP MCU energy model.

    Attributes:
        clock_hz: Active clock frequency.
        active_power_w: Power while executing (MSP430-class:
            ~220 uA/MHz at 2.2 V -> ~0.5 mW/MHz; 1 MHz default).
        sleep_power_w: LPM3-class standby power (RAM + RTC retained).
        rtos_tick_hz: FreeRTOS tick rate.
        rtos_tick_cycles: Cycles consumed per tick (scheduler + timers).
    """

    clock_hz: float = 1.0e6
    active_power_w: float = 0.5e-3
    sleep_power_w: float = 3.0e-6
    rtos_tick_hz: float = 100.0
    rtos_tick_cycles: int = 400

    @property
    def energy_per_cycle(self) -> float:
        """Joules per active cycle."""
        return self.active_power_w / self.clock_hz

    def compute_energy(self, cycles: float) -> float:
        """Energy to execute ``cycles`` active cycles."""
        return cycles * self.energy_per_cycle

    def rtos_energy(self, duration_s: float) -> float:
        """OS overhead energy over a time span (tick work + scheduling)."""
        ticks = self.rtos_tick_hz * duration_s
        return self.compute_energy(ticks * self.rtos_tick_cycles)

    def idle_energy(self, duration_s: float, active_fraction: float) -> float:
        """Sleep-mode energy for the fraction of time not computing."""
        idle = max(0.0, 1.0 - active_fraction)
        return self.sleep_power_w * duration_s * idle


@dataclass(frozen=True)
class FrontEndModel:
    """Acquisition front-end (instrumentation amplifier + SAR ADC).

    Attributes:
        energy_per_sample_j: Conversion energy per sample including the
            amplifier's per-sample share (50 nJ: a 12-bit SAR at ~1 nJ
            plus a ~1 uA/lead chopper amplifier biased continuously,
            amortized at 250 Hz).
        bias_power_w: Standing bias power per lead (electrode interface).
    """

    energy_per_sample_j: float = 50e-9
    bias_power_w: float = 3.0e-6

    def sampling_energy(self, n_samples: int, n_leads: int,
                        duration_s: float) -> float:
        """Energy to acquire ``n_samples`` per lead over ``duration_s``."""
        conversions = n_samples * n_leads * self.energy_per_sample_j
        bias = self.bias_power_w * n_leads * duration_s
        return conversions + bias
