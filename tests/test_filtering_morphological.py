"""Unit tests for repro.filtering.morphological (Sun 2002 conditioning)."""

import numpy as np
import pytest

from repro.filtering import MorphologicalFilter, MorphologicalFilterConfig
from repro.signals import baseline_wander, snr_db


class TestConstruction:
    def test_structuring_lengths_are_odd(self):
        mf = MorphologicalFilter(250.0)
        assert all(length % 2 == 1 for length in mf.structuring_lengths)

    def test_baseline_se_longer_than_noise_se(self):
        mf = MorphologicalFilter(250.0)
        b1, b2, n1, n2 = mf.structuring_lengths
        assert b1 > n2 and b2 > b1

    def test_invalid_fs(self):
        with pytest.raises(ValueError, match="positive"):
            MorphologicalFilter(0.0)

    def test_custom_config(self):
        config = MorphologicalFilterConfig(baseline_opening_s=0.3)
        mf = MorphologicalFilter(100.0, config)
        assert mf.structuring_lengths[0] == 31


class TestBaselineRemoval:
    def test_removes_drift(self, clean_record, rng):
        fs = clean_record.fs
        lead = clean_record.signals[1][:5000]
        drift = baseline_wander(lead.shape[0], fs, rng, amplitude_mv=0.4)
        mf = MorphologicalFilter(fs)
        restored = mf.remove_baseline(lead + drift)
        assert snr_db(lead, restored) > snr_db(lead, lead + drift) + 6

    def test_baseline_of_flat_signal_is_flat(self):
        mf = MorphologicalFilter(250.0)
        x = np.full(2000, 0.3)
        assert np.allclose(mf.baseline(x), 0.3)

    def test_preserves_qrs_amplitude(self, clean_record):
        mf = MorphologicalFilter(clean_record.fs)
        lead = clean_record.signals[1]
        conditioned = mf.remove_baseline(lead)
        beat = clean_record.beats[5]
        assert conditioned[beat.r_peak] == pytest.approx(
            lead[beat.r_peak], rel=0.15)


class TestNoiseSuppression:
    def test_suppresses_impulses(self):
        mf = MorphologicalFilter(250.0)
        x = np.zeros(1000)
        impulses = np.zeros(1000)
        impulses[::97] = 1.0
        cleaned = mf.suppress_noise(x + impulses)
        assert np.max(np.abs(cleaned)) < 0.6

    def test_condition_improves_snr_on_noisy_ecg(self, clean_record, rng):
        fs = clean_record.fs
        lead = clean_record.signals[1][:5000]
        drift = baseline_wander(lead.shape[0], fs, rng, amplitude_mv=0.5)
        mf = MorphologicalFilter(fs)
        conditioned = mf.condition(lead + drift)
        assert snr_db(lead, conditioned) > snr_db(lead, lead + drift) + 6


class TestRecordInterfaces:
    def test_condition_record_preserves_annotations(self, nsr_record):
        ecg = nsr_record.lead(1)
        mf = MorphologicalFilter(ecg.fs)
        conditioned = mf.condition_record(ecg)
        assert conditioned.r_peaks.tolist() == ecg.r_peaks.tolist()
        assert len(conditioned) == len(ecg)

    def test_condition_multilead_shape(self, nsr_record):
        mf = MorphologicalFilter(nsr_record.fs)
        conditioned = mf.condition_multilead(nsr_record)
        assert conditioned.signals.shape == nsr_record.signals.shape
        assert conditioned.lead_names == tuple(nsr_record.lead_names)

    def test_comparisons_per_sample_positive(self):
        assert MorphologicalFilter(250.0).comparisons_per_sample() > 0
