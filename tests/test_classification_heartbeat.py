"""End-to-end heartbeat-classification tests (paper exp T4)."""

import numpy as np
import pytest

from repro.classification import (
    HeartbeatClassifier,
    corpus_beat_dataset,
    evaluate_classification,
    train_test_split,
)


@pytest.fixture(scope="module")
def beat_dataset(ectopy_corpus):
    X, y = corpus_beat_dataset(ectopy_corpus, rr_features=True)
    return train_test_split(X, y, test_fraction=0.4, seed=5)


class TestPipelineAccuracy:
    def test_ternary_accuracy(self, beat_dataset):
        Xtr, ytr, Xte, yte = beat_dataset
        clf = HeartbeatClassifier(window=Xtr.shape[1] - 2,
                                  extra_features=2).fit(Xtr, ytr)
        report = evaluate_classification(yte, clf.predict(Xte))
        assert report.accuracy >= 0.90

    def test_pwl_close_to_exact(self, beat_dataset):
        Xtr, ytr, Xte, yte = beat_dataset
        window = Xtr.shape[1] - 2
        exact = HeartbeatClassifier(window=window, extra_features=2,
                                    membership="exact").fit(Xtr, ytr)
        pwl = HeartbeatClassifier(window=window, extra_features=2,
                                  membership="pwl").fit(Xtr, ytr)
        acc_exact = evaluate_classification(
            yte, exact.predict(Xte)).accuracy
        acc_pwl = evaluate_classification(yte, pwl.predict(Xte)).accuracy
        # §IV-A: the 4-segment linearization is close to optimal.
        assert abs(acc_exact - acc_pwl) < 0.05

    def test_sparse_close_to_dense(self, beat_dataset):
        Xtr, ytr, Xte, yte = beat_dataset
        window = Xtr.shape[1] - 2
        sparse = HeartbeatClassifier(window=window, extra_features=2,
                                     projection_kind="ternary").fit(Xtr, ytr)
        dense = HeartbeatClassifier(window=window, extra_features=2,
                                    projection_kind="gaussian").fit(Xtr, ytr)
        acc_sparse = evaluate_classification(
            yte, sparse.predict(Xte)).accuracy
        acc_dense = evaluate_classification(
            yte, dense.predict(Xte)).accuracy
        # §IV-A: few non-zeros suffice for close-to-optimal results.
        assert acc_sparse > acc_dense - 0.06

    def test_pvc_detection_strong(self, beat_dataset):
        Xtr, ytr, Xte, yte = beat_dataset
        clf = HeartbeatClassifier(window=Xtr.shape[1] - 2,
                                  extra_features=2).fit(Xtr, ytr)
        report = evaluate_classification(yte, clf.predict(Xte))
        assert report.sensitivity("V") >= 0.85

    def test_rr_features_help_apc(self, ectopy_corpus):
        X_rr, y = corpus_beat_dataset(ectopy_corpus, rr_features=True)
        X_plain, _ = corpus_beat_dataset(ectopy_corpus, rr_features=False)
        Xtr_rr, ytr, Xte_rr, yte = train_test_split(X_rr, y, seed=5)
        Xtr, _, Xte, _ = train_test_split(X_plain, y, seed=5)
        with_rr = HeartbeatClassifier(window=Xtr_rr.shape[1] - 2,
                                      extra_features=2).fit(Xtr_rr, ytr)
        without = HeartbeatClassifier(window=Xtr.shape[1]).fit(Xtr, ytr)
        se_with = evaluate_classification(
            yte, with_rr.predict(Xte_rr)).sensitivity("S")
        se_without = evaluate_classification(
            yte, without.predict(Xte)).sensitivity("S")
        assert se_with >= se_without


class TestCostModel:
    def test_pwl_cheaper_cycles(self):
        exact = HeartbeatClassifier(membership="exact")
        pwl = HeartbeatClassifier(membership="pwl")
        for clf in (exact, pwl):
            clf.classifier.rules = [object()] * 3  # 3 classes
        assert pwl.cycles_per_beat() < exact.cycles_per_beat()

    def test_column_count_checked(self, rng):
        clf = HeartbeatClassifier(window=100, extra_features=2)
        with pytest.raises(ValueError, match="columns"):
            clf.predict(rng.standard_normal((3, 100)))


class TestSplit:
    def test_split_sizes(self, rng):
        X = rng.standard_normal((100, 5))
        y = np.array(["a", "b"] * 50)
        Xtr, ytr, Xte, yte = train_test_split(X, y, test_fraction=0.3,
                                              seed=1)
        assert Xtr.shape[0] == 70 and Xte.shape[0] == 30
        assert ytr.shape[0] == 70 and yte.shape[0] == 30

    def test_split_is_shuffled_but_consistent(self, rng):
        X = np.arange(50, dtype=float).reshape(-1, 1)
        y = np.array(["a"] * 25 + ["b"] * 25)
        a = train_test_split(X, y, seed=2)
        b = train_test_split(X, y, seed=2)
        assert np.array_equal(a[0], b[0])
        assert set(a[3]) == {"a", "b"}  # both classes reach the test side

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError, match="test_fraction"):
            train_test_split(np.zeros((10, 2)), np.zeros(10), 1.5)
